//! Spark-style unified execution-memory governor.
//!
//! The storage side of a node's memory has always had a budget (the LRU
//! cache), but execution memory — triangular pair arrays, CSR tries, bitmap
//! arenas, shuffle combine buffers — was unbounded and unaccounted. This
//! module splits `memory_per_node` into an **execution region** and a
//! **storage region** (the [`crate::jobs::SchedulerConfig::storage_fraction`]
//! split, replacing the old hardcoded 60 %), and hands every task a
//! deterministic [`MemoryBudget`] slice of the execution region.
//!
//! Like Spark's unified memory manager, execution can *borrow* from storage:
//! cached blocks are evictable down to a floor (half the storage region),
//! so a task's hard cap is its execution slice plus its share of the
//! borrowable storage. Borrowed bytes are not free — each byte borrowed
//! evicts a cached byte to local disk, charged as a pressure stall on the
//! borrowing task (which the critical-path analyzer buckets as
//! `fault_stall`).
//!
//! Overflow walks a graceful-degradation ladder *before* anything fails:
//!
//! 1. **Spill** — degradable buffers (shuffle map-side combine) stream
//!    through local disk in [`SPILL_GRANULE`] chunks, charged via the cost
//!    model;
//! 2. **Step down** — Phase-II matchers degrade bitmap → trie → hash-tree
//!    at pass granularity when the preferred structure's footprint estimate
//!    does not fit (`mem.degradations`);
//! 3. **Kill + retry** — an injected-or-real OOM at a non-degradable site
//!    kills the task attempt; the retry runs at a doubled memory slice
//!    (modelling reduced concurrency), bounded by the plan's
//!    `max_task_failures`;
//! 4. **Refuse** — admission control rejects jobs whose pass-1 footprint
//!    cannot fit even with borrowing, as a typed driver-side error — never
//!    a wrong or silently-partial result.
//!
//! Determinism: the governor never tracks live cross-task node occupancy
//! (host threads interleave nondeterministically). Each task is checked
//! against its own per-task slice, OOM injections hash
//! `(seed, stage key, partition, roll, site, attempt)`, and the node-level
//! peak is the max over per-task peaks — all independent of host
//! interleaving, so mining results and virtual time stay byte-identical
//! for a given plan.

use crate::costmodel::CostModel;
use crate::fault::{FaultPlan, MemoryCounters};
use crate::hash::fx_hash64;
use crate::spec::ClusterSpec;
use std::cell::Cell;

/// Smallest buffer worth spilling: a task slice below this cannot make
/// progress even by streaming through disk, so admission control refuses
/// the job outright.
pub const SPILL_GRANULE: u64 = 64 * 1024;

/// Execution-memory acquisition site tags (hash domains for OOM rolls).
pub mod site {
    /// Shuffle map-side combine buffer (degradable: spills).
    pub const SHUFFLE_COMBINE: u64 = 1;
    /// Phase-2 triangular candidate-pair count array.
    pub const TRIANGLE: u64 = 2;
    /// Candidate-store count array (hash-tree / trie passes).
    pub const CANDIDATE_STORE: u64 = 3;
    /// Vertical bitmap arena (columnar partition).
    pub const BITMAP_ARENA: u64 = 4;
    /// MapReduce map-side combine buffer (degradable: spills).
    pub const MR_COMBINE: u64 = 5;

    /// Human-readable name for a site tag (error messages, reports).
    pub fn name(site: u64) -> &'static str {
        match site {
            SHUFFLE_COMBINE => "shuffle combine buffer",
            TRIANGLE => "triangle count array",
            CANDIDATE_STORE => "candidate store",
            BITMAP_ARENA => "bitmap arena",
            MR_COMBINE => "map-side combine buffer",
            _ => "execution memory",
        }
    }
}

/// Why the governor refused to admit a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryRefusal {
    /// Bytes the smallest viable footprint needs per task.
    pub required: u64,
    /// Hard per-task cap the budget can offer (with full borrowing).
    pub available: u64,
}

impl std::fmt::Display for MemoryRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget refused: needs {} bytes per task but the governor \
             can offer at most {} (raise the budget or --memory-fraction the \
             storage region down)",
            self.required, self.available
        )
    }
}

/// One node's memory regions plus the per-task slice every task reserves
/// against. Cheap to copy; carried by `TaskContext`.
#[derive(Clone, Copy, Debug)]
pub struct MemoryBudget {
    /// Plan seed (OOM roll hash domain).
    pub seed: u64,
    /// Per-acquisition injected-OOM probability.
    pub oom_prob: f64,
    /// Total bytes the node pretends to have (override or spec).
    pub node_total: u64,
    /// Bytes reserved for execution (total minus storage region).
    pub execution_region: u64,
    /// Bytes reserved for cached blocks (the `storage_fraction` split).
    pub storage_region: u64,
    /// Storage bytes execution can never evict (half the storage region).
    pub storage_floor: u64,
    /// Fair execution slice per task (execution region / cores per node).
    pub per_task_quota: u64,
    /// Hard per-task cap: quota plus this task's share of borrowable
    /// storage.
    pub per_task_limit: u64,
    /// Whole-node cap a fully-backed-off retry may grow into.
    pub node_limit: u64,
    /// Retry budget for OOM-killed attempts (the plan's
    /// `max_task_failures`).
    pub max_oom_retries: u32,
    /// Virtual microseconds one kill-and-resubmit costs.
    pub resubmit_micros: u64,
    /// Virtual microseconds to evict one borrowed byte to local disk.
    pub evict_micros_per_byte: f64,
}

impl MemoryBudget {
    /// Build the budget for one node from the cluster spec, the scheduler's
    /// storage split and the fault plan's knobs. Returns `None` when the
    /// plan does not arm the governor — the inert path charges and counts
    /// nothing, keeping unconstrained runs byte-identical.
    pub fn from_plan(
        spec: &ClusterSpec,
        storage_fraction: f64,
        cost: &CostModel,
        plan: &FaultPlan,
    ) -> Option<MemoryBudget> {
        if !plan.memory_active() {
            return None;
        }
        let node_total = plan.mem_budget_override.unwrap_or(spec.memory_per_node);
        let storage_region = storage_capacity(node_total, storage_fraction);
        let execution_region = node_total - storage_region;
        let storage_floor = storage_region / 2;
        let borrowable = storage_region - storage_floor;
        let cores = u64::from(spec.cores_per_node.max(1));
        let node_limit = execution_region + borrowable;
        Some(MemoryBudget {
            seed: plan.seed,
            oom_prob: plan.oom_prob,
            node_total,
            execution_region,
            storage_region,
            storage_floor,
            per_task_quota: execution_region / cores,
            per_task_limit: node_limit / cores,
            node_limit,
            max_oom_retries: plan.max_task_failures,
            resubmit_micros: (plan.resubmit_delay.as_secs() * 1e6).round() as u64,
            evict_micros_per_byte: 1e6 / cost.disk_write_bw,
        })
    }

    /// Per-task cap for retry `attempt`: each retry doubles the slice
    /// (fewer concurrent tasks share the node), saturating at the whole
    /// node's evictable memory.
    pub fn attempt_cap(&self, attempt: u32) -> u64 {
        self.per_task_limit
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.node_limit)
    }

    /// Admission control: can a task that needs `required` bytes (its
    /// smallest viable footprint) run at all, even with full borrowing?
    pub fn admit(&self, required: u64) -> Result<(), MemoryRefusal> {
        if required <= self.per_task_limit {
            Ok(())
        } else {
            Err(MemoryRefusal {
                required,
                available: self.per_task_limit,
            })
        }
    }

    /// Pressure-stall charge for pushing `bytes` of cached data out of the
    /// borrowable storage region, in virtual microseconds.
    pub fn evict_micros(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.evict_micros_per_byte).round() as u64
    }
}

/// The single OOM-roll hash shared by [`FaultPlan::oom_roll`] and
/// [`MemoryBudget::oom_roll`]: one formula, one hash domain, no drift.
pub(crate) fn oom_roll_hash(
    seed: u64,
    oom_prob: f64,
    stage_key: u64,
    partition: usize,
    roll: u64,
    site: u64,
    attempt: u32,
) -> bool {
    let prob = oom_prob * 0.5f64.powi(attempt as i32);
    if prob <= 0.0 {
        return false;
    }
    let key = (
        seed,
        0x006du64, // OOM hash domain
        stage_key,
        partition as u64,
        roll,
        site,
        attempt as u64,
    );
    let r = (fx_hash64(&key) >> 11) as f64 / (1u64 << 53) as f64;
    r < prob
}

impl MemoryBudget {
    /// Seeded OOM decision — identical to [`FaultPlan::oom_roll`] for the
    /// plan this budget was built from.
    pub fn oom_roll(
        &self,
        stage_key: u64,
        partition: usize,
        roll: u64,
        site: u64,
        attempt: u32,
    ) -> bool {
        oom_roll_hash(
            self.seed,
            self.oom_prob,
            stage_key,
            partition,
            roll,
            site,
            attempt,
        )
    }
}

/// Outcome of one execution-memory reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemGrant {
    /// The bytes are held in memory (possibly after surviving a kill-and-
    /// retry ladder at a doubled slice).
    Granted,
    /// Denied: the caller must stream this buffer through local disk
    /// instead of holding it. Only degradable sites receive this; the
    /// spill's disk I/O charge is part of the accompanying effect.
    Spill,
}

/// A task attempt that exhausted its OOM retry ladder. The stage must
/// abort with a typed out-of-memory error — never return a partial result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OomAbort {
    /// Partition whose task kept dying.
    pub partition: usize,
    /// Acquisition site tag (see [`site`]).
    pub site: u64,
    /// Bytes the final attempt asked for.
    pub bytes: u64,
    /// Attempts burned (1 + the plan's `max_task_failures` retries).
    pub attempts: u32,
}

/// The deterministic side effects of one reservation, for the caller to
/// apply to its counters: governor bookkeeping to merge, stall time to
/// charge ([`crate::critical`] buckets it as `fault_stall`), and spill
/// bytes to round-trip through local disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemEffect {
    /// Governor counter deltas (peak, spills, OOM outcomes).
    pub mem: MemoryCounters,
    /// Virtual microseconds of pressure stall (evictions, kill/resubmit).
    pub stall_micros: u64,
    /// Bytes to charge as one local-disk write + read (the spill round
    /// trip).
    pub spill_disk_bytes: u64,
}

/// Per-task execution-memory ledger: the engine-neutral state machine both
/// engines drive their reservations through. Unarmed (`budget == None`) it
/// is completely inert — every reservation is a free no-op grant — so
/// unconstrained runs stay byte-identical.
pub struct TaskMemory {
    budget: Option<MemoryBudget>,
    stage_key: u64,
    partition: usize,
    acquired: Cell<u64>,
    rolls: Cell<u64>,
    abort: Cell<Option<OomAbort>>,
}

impl TaskMemory {
    /// An unarmed ledger (no governor, no charges, no counters).
    pub fn inert() -> Self {
        Self::new(None, 0, 0)
    }

    /// A ledger for `partition` of the stage identified by `stage_key`.
    pub fn new(budget: Option<MemoryBudget>, stage_key: u64, partition: usize) -> Self {
        TaskMemory {
            budget,
            stage_key,
            partition,
            acquired: Cell::new(0),
            rolls: Cell::new(0),
            abort: Cell::new(None),
        }
    }

    /// Whether the governor is armed for this task.
    pub fn armed(&self) -> bool {
        self.budget.is_some()
    }

    /// Reserve `bytes` of execution memory for the structure tagged `site`.
    /// Degradable sites (combine buffers) spill on denial; the rest walk
    /// the kill-and-retry ladder, each retry at a doubled slice, and mark
    /// the task for a typed abort when the ladder exhausts. Returns the
    /// grant decision plus the counter/stall/disk effects for the caller
    /// to apply.
    pub fn try_reserve(&self, bytes: u64, site: u64, degradable: bool) -> (MemGrant, MemEffect) {
        let mut fx = MemEffect::default();
        let Some(b) = &self.budget else {
            return (MemGrant::Granted, fx);
        };
        let roll = self.rolls.get();
        self.rolls.set(roll + 1);
        let held = self.acquired.get();
        let over = |attempt: u32| held.saturating_add(bytes) > b.attempt_cap(attempt);
        let injected = b.oom_roll(self.stage_key, self.partition, roll, site, 0);
        if !injected && !over(0) {
            self.grant(bytes, b, &mut fx);
            return (MemGrant::Granted, fx);
        }
        if degradable {
            // Rung 1 of the ladder: stream the buffer through local disk.
            // An injected denial is an OOM event the spill survived; a real
            // over-budget buffer is ordinary pressure — a plain spill.
            if injected {
                fx.mem.oom_injected += 1;
                fx.mem.oom_survived_by_degradation += 1;
            }
            fx.mem.spills += 1;
            fx.mem.spill_bytes += bytes;
            fx.spill_disk_bytes += bytes;
            return (MemGrant::Spill, fx);
        }
        // Rung 3: the attempt dies. Retries model Spark's "rerun at reduced
        // concurrency": each one owns a doubled slice, and each failed
        // attempt costs a kill-and-resubmit round trip of stall time.
        fx.mem.oom_injected += 1;
        fx.mem.oom_killed += 1;
        for attempt in 1..=b.max_oom_retries {
            fx.stall_micros += b.resubmit_micros;
            if !b.oom_roll(self.stage_key, self.partition, roll, site, attempt) && !over(attempt) {
                self.grant(bytes, b, &mut fx);
                return (MemGrant::Granted, fx);
            }
        }
        self.abort.set(Some(OomAbort {
            partition: self.partition,
            site,
            bytes,
            attempts: b.max_oom_retries + 1,
        }));
        // The computation continues (its result is discarded): the driver
        // sees the abort mark and fails the stage with a typed error.
        (MemGrant::Granted, fx)
    }

    /// Return `bytes` to the pool (a structure was dropped mid-task).
    pub fn release(&self, bytes: u64) {
        self.acquired.set(self.acquired.get().saturating_sub(bytes));
    }

    /// The abort mark, if any reservation exhausted its retry ladder.
    pub fn abort(&self) -> Option<OomAbort> {
        self.abort.get()
    }

    fn grant(&self, bytes: u64, b: &MemoryBudget, fx: &mut MemEffect) {
        let prev = self.acquired.get();
        let now = prev + bytes;
        self.acquired.set(now);
        fx.mem.peak_execution_bytes = fx.mem.peak_execution_bytes.max(now);
        // Crossing the fair quota borrows from the storage region: each
        // borrowed byte evicts a cached byte to disk, charged as a
        // pressure stall on the borrower.
        if now > b.per_task_quota {
            let newly = now.min(b.node_limit) - prev.max(b.per_task_quota);
            if newly > 0 {
                fx.stall_micros += b.evict_micros(newly);
            }
        }
    }
}

/// Bytes of a node's memory given to the storage (cache) region. The 0.6
/// default must reproduce the historical `memory_per_node * 6 / 10` integer
/// math bit-for-bit, so it is special-cased: `0.6f64` is not exactly 6/10
/// and the float product rounds differently for some capacities.
pub fn storage_capacity(memory_per_node: u64, fraction: f64) -> u64 {
    if fraction == 0.6 {
        memory_per_node * 6 / 10
    } else {
        (memory_per_node as f64 * fraction) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GIB;
    use crate::time::SimDuration;

    fn spec() -> ClusterSpec {
        ClusterSpec::new(4, 8, 8 * GIB)
    }

    #[test]
    fn inert_plan_yields_no_budget() {
        let plan = FaultPlan::seeded(3).crash_tasks(0.5);
        assert!(MemoryBudget::from_plan(&spec(), 0.6, &CostModel::default(), &plan).is_none());
    }

    #[test]
    fn regions_split_and_per_task_slices_follow_cores() {
        let plan = FaultPlan::seeded(0).with_mem_budget(1000);
        let b = MemoryBudget::from_plan(&spec(), 0.6, &CostModel::default(), &plan)
            .expect("override arms the governor");
        assert_eq!(b.node_total, 1000);
        assert_eq!(b.storage_region, 600);
        assert_eq!(b.execution_region, 400);
        assert_eq!(b.storage_floor, 300);
        assert_eq!(b.node_limit, 700);
        assert_eq!(b.per_task_quota, 400 / 8);
        assert_eq!(b.per_task_limit, 700 / 8);
        // Retries double the slice, saturating at the node.
        assert_eq!(b.attempt_cap(0), 87);
        assert_eq!(b.attempt_cap(1), 174);
        assert_eq!(b.attempt_cap(10), 700);
    }

    #[test]
    fn admission_refuses_oversized_footprints_with_a_typed_reason() {
        let plan = FaultPlan::seeded(0).with_mem_budget(1024);
        let b = MemoryBudget::from_plan(&spec(), 0.6, &CostModel::default(), &plan).unwrap();
        assert!(b.admit(b.per_task_limit).is_ok());
        let err = b.admit(SPILL_GRANULE).expect_err("tiny budget refuses");
        assert_eq!(err.required, SPILL_GRANULE);
        assert_eq!(err.available, b.per_task_limit);
        assert!(err.to_string().contains("memory budget refused"));
    }

    #[test]
    fn storage_capacity_default_matches_legacy_integer_math() {
        for m in [1u64, 10, 999, GIB, 3 * GIB + 7, 8 * GIB] {
            assert_eq!(storage_capacity(m, 0.6), m * 6 / 10, "m = {m}");
        }
        assert_eq!(storage_capacity(1000, 0.25), 250);
        assert_eq!(storage_capacity(1000, 1.0), 1000);
    }

    fn budget_of(total: u64, oom_prob: f64, retries: u32) -> MemoryBudget {
        let mut plan = FaultPlan::seeded(7)
            .with_mem_budget(total)
            .with_max_task_failures(retries);
        plan.oom_prob = oom_prob;
        MemoryBudget::from_plan(
            &ClusterSpec::new(1, 1, GIB),
            0.6,
            &CostModel::default(),
            &plan,
        )
        .expect("armed")
    }

    #[test]
    fn inert_ledger_grants_everything_for_free() {
        let tm = TaskMemory::inert();
        assert!(!tm.armed());
        let (g, fx) = tm.try_reserve(u64::MAX, site::TRIANGLE, false);
        assert_eq!(g, MemGrant::Granted);
        assert_eq!(fx, MemEffect::default(), "no counters, no charges");
        assert!(tm.abort().is_none());
    }

    #[test]
    fn within_quota_grants_track_peak_only() {
        let tm = TaskMemory::new(Some(budget_of(1000, 0.0, 4)), 1, 0);
        // quota = execution 400 / 1 core = 400.
        let (g, fx) = tm.try_reserve(100, site::TRIANGLE, false);
        assert_eq!(g, MemGrant::Granted);
        assert_eq!(fx.mem.peak_execution_bytes, 100);
        assert_eq!(fx.stall_micros, 0, "no borrowing, no stall");
        let (_, fx2) = tm.try_reserve(200, site::BITMAP_ARENA, false);
        assert_eq!(fx2.mem.peak_execution_bytes, 300, "peak is cumulative");
        tm.release(200);
        let (_, fx3) = tm.try_reserve(50, site::CANDIDATE_STORE, false);
        assert_eq!(fx3.mem.peak_execution_bytes, 150, "release frees bytes");
        assert!(tm.abort().is_none());
    }

    #[test]
    fn borrowing_past_quota_charges_a_pressure_stall() {
        let tm = TaskMemory::new(Some(budget_of(1000, 0.0, 4)), 1, 0);
        // quota 400, limit 700: 500 bytes borrows 100 from storage.
        let (g, fx) = tm.try_reserve(500, site::TRIANGLE, false);
        assert_eq!(g, MemGrant::Granted);
        assert!(fx.stall_micros > 0, "borrowed bytes evict cached data");
        assert_eq!(fx.mem.oom_injected, 0, "borrowing is not an OOM");
    }

    #[test]
    fn degradable_overflow_spills_without_an_oom_event() {
        let tm = TaskMemory::new(Some(budget_of(1000, 0.0, 4)), 1, 0);
        let (g, fx) = tm.try_reserve(5000, site::SHUFFLE_COMBINE, true);
        assert_eq!(g, MemGrant::Spill);
        assert_eq!(fx.mem.spills, 1);
        assert_eq!(fx.mem.spill_bytes, 5000);
        assert_eq!(fx.spill_disk_bytes, 5000);
        assert_eq!(fx.mem.oom_injected, 0, "real pressure is a plain spill");
        assert!(tm.abort().is_none());
    }

    #[test]
    fn injected_oom_at_degradable_site_is_survived_by_spilling() {
        // oom_prob = 1: every acquisition is denied.
        let tm = TaskMemory::new(Some(budget_of(GIB, 1.0, 4)), 1, 0);
        let (g, fx) = tm.try_reserve(10, site::SHUFFLE_COMBINE, true);
        assert_eq!(g, MemGrant::Spill);
        assert_eq!(fx.mem.oom_injected, 1);
        assert_eq!(fx.mem.oom_survived_by_degradation, 1);
        assert_eq!(fx.mem.oom_killed, 0);
        assert_eq!(fx.mem.spills, 1);
    }

    #[test]
    fn injected_oom_at_rigid_site_kills_then_retries_at_doubled_slice() {
        // 50% prob: some acquisition both rolls OOM at attempt 0 and gets
        // through on a later attempt (halved prob per retry).
        let b = budget_of(GIB, 0.5, 6);
        let mut survived_after_kill = false;
        for part in 0..64 {
            let tm = TaskMemory::new(Some(b), 1, part);
            let (g, fx) = tm.try_reserve(10, site::TRIANGLE, false);
            assert_eq!(g, MemGrant::Granted);
            if fx.mem.oom_killed == 1 && tm.abort().is_none() {
                survived_after_kill = true;
                assert_eq!(fx.mem.oom_injected, 1);
                assert!(
                    fx.stall_micros >= b.resubmit_micros,
                    "every failed attempt stalls a resubmit round trip"
                );
            }
        }
        assert!(survived_after_kill, "50% over 64 tasks must kill some");
    }

    #[test]
    fn exhausted_retry_ladder_marks_a_typed_abort() {
        // An ask bigger than the whole node can never fit, no matter how
        // often the slice doubles: the ladder exhausts deterministically.
        let b = budget_of(1000, 0.0, 3);
        let tm = TaskMemory::new(Some(b), 1, 5);
        let ask = b.node_limit + 1;
        let (_, fx) = tm.try_reserve(ask, site::BITMAP_ARENA, false);
        assert_eq!(fx.mem.oom_killed, 1);
        let abort = tm.abort().expect("over-node ask never fits");
        assert_eq!(abort.partition, 5);
        assert_eq!(abort.site, site::BITMAP_ARENA);
        assert_eq!(abort.bytes, ask);
        assert_eq!(abort.attempts, 4, "1 launch + 3 retries");
        assert_eq!(fx.stall_micros, 3 * b.resubmit_micros);
    }

    #[test]
    fn real_overflow_at_rigid_site_survives_once_the_slice_doubles_enough() {
        // 150-byte ask against an 87-byte limit: attempt 1 (174) fits.
        let tm = TaskMemory::new(Some(budget_of(1000, 0.0, 4)), 1, 0);
        let tm = TaskMemory::new(
            Some(MemoryBudget {
                per_task_quota: 50,
                per_task_limit: 87,
                ..tm.budget.unwrap()
            }),
            1,
            0,
        );
        let (g, fx) = tm.try_reserve(150, site::TRIANGLE, false);
        assert_eq!(g, MemGrant::Granted);
        assert_eq!(fx.mem.oom_injected, 1, "real overflow is an OOM event");
        assert_eq!(fx.mem.oom_killed, 1);
        assert!(tm.abort().is_none(), "the doubled slice fits");
        assert_eq!(
            fx.mem.oom_injected,
            fx.mem.oom_killed + fx.mem.oom_survived_by_degradation
        );
    }

    #[test]
    fn reservations_roll_independently_and_deterministically() {
        let b = budget_of(GIB, 0.5, 4);
        let run = || {
            let tm = TaskMemory::new(Some(b), 9, 3);
            (0..16)
                .map(|_| tm.try_reserve(10, site::SHUFFLE_COMBINE, true).0)
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same ledger replays identically");
        assert!(a.contains(&MemGrant::Spill) && a.contains(&MemGrant::Granted));
    }

    #[test]
    fn eviction_and_resubmit_charges_are_deterministic() {
        let plan = FaultPlan::seeded(0)
            .with_mem_budget(GIB)
            .with_resubmit_delay(SimDuration::from_secs(0.2));
        let b = MemoryBudget::from_plan(&spec(), 0.6, &CostModel::default(), &plan).unwrap();
        assert_eq!(b.resubmit_micros, 200_000);
        assert_eq!(b.evict_micros(0), 0);
        assert!(b.evict_micros(1 << 20) > 0);
        assert_eq!(b.evict_micros(1 << 20), b.evict_micros(1 << 20));
    }
}
