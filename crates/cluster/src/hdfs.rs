//! Simulated HDFS.
//!
//! Files hold their *real* contents (lines of text) in memory, so the engines
//! built on this substrate parse and process genuine bytes. What is simulated
//! is the layout and the cost: files are split into blocks, each block has
//! replicas placed deterministically across nodes, and the engines charge
//! disk/network virtual time when they read or commit blocks.

use crate::costmodel::CostModel;
use crate::spec::{ClusterSpec, NodeId};
use crate::sync::RwLock;
use std::any::Any;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// Default HDFS block size (64 MiB, the Hadoop 1.x default).
pub const DEFAULT_BLOCK_SIZE: u64 = 64 * 1024 * 1024;

/// Errors from the simulated file system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfsError {
    /// No file with that name exists.
    NotFound(String),
    /// A file with that name already exists.
    AlreadyExists(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(n) => write!(f, "dfs file not found: {n}"),
            DfsError::AlreadyExists(n) => write!(f, "dfs file already exists: {n}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// One block of a file: a contiguous range of lines with replica placement.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    /// Block index within the file.
    pub index: usize,
    /// Line range covered by this block.
    pub lines: Range<usize>,
    /// Exact byte size of the block (line bytes + newlines).
    pub bytes: u64,
    /// Nodes holding a replica; the first is the "primary".
    pub replicas: Vec<NodeId>,
}

impl BlockInfo {
    /// Whether `node` holds a replica of this block.
    pub fn is_local(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }
}

/// One input split handed to a task: a range of lines plus the node the
/// scheduler should prefer (a replica holder).
#[derive(Clone, Debug)]
pub struct Split {
    /// Split index.
    pub index: usize,
    /// Line range of the split.
    pub lines: Range<usize>,
    /// Exact byte size of the split.
    pub bytes: u64,
    /// Node a locality-aware scheduler should run the task on.
    pub preferred_node: NodeId,
}

struct FileInner {
    name: String,
    lines: Arc<Vec<String>>,
    /// offsets[i] = bytes of lines[..i] including one newline per line;
    /// offsets.len() == lines.len() + 1.
    offsets: Vec<u64>,
    blocks: Vec<BlockInfo>,
}

/// Handle to a stored file. Cheap to clone; contents are shared.
#[derive(Clone)]
pub struct DfsFile {
    inner: Arc<FileInner>,
}

impl DfsFile {
    /// File name (path).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        *self.inner.offsets.last().expect("offsets never empty")
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.inner.lines.len()
    }

    /// Shared reference to the real file contents.
    pub fn lines(&self) -> &Arc<Vec<String>> {
        &self.inner.lines
    }

    /// Block layout.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.inner.blocks
    }

    /// Exact byte size of a line range.
    pub fn range_bytes(&self, range: Range<usize>) -> u64 {
        self.inner.offsets[range.end] - self.inner.offsets[range.start]
    }

    /// Derive input splits: one per block, subdividing blocks further if
    /// fewer than `min_splits` would result (Spark's
    /// `textFile(path, minPartitions)` behaviour). Splits inherit the
    /// enclosing block's primary replica as their preferred node.
    pub fn splits(&self, min_splits: usize) -> Vec<Split> {
        let blocks = &self.inner.blocks;
        if blocks.is_empty() {
            return Vec::new();
        }
        let per_block = min_splits.div_ceil(blocks.len()).max(1);
        let mut out = Vec::new();
        for b in blocks {
            let n_lines = b.lines.len();
            let parts = per_block.min(n_lines.max(1));
            let chunk = n_lines.div_ceil(parts.max(1)).max(1);
            let mut start = b.lines.start;
            while start < b.lines.end {
                let end = (start + chunk).min(b.lines.end);
                out.push(Split {
                    index: out.len(),
                    lines: start..end,
                    bytes: self.range_bytes(start..end),
                    preferred_node: b.replicas[0],
                });
                start = end;
            }
            if n_lines == 0 {
                out.push(Split {
                    index: out.len(),
                    lines: b.lines.clone(),
                    bytes: 0,
                    preferred_node: b.replicas[0],
                });
            }
        }
        out
    }
}

impl std::fmt::Debug for DfsFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DfsFile")
            .field("name", &self.inner.name)
            .field("bytes", &self.bytes())
            .field("lines", &self.num_lines())
            .field("blocks", &self.inner.blocks.len())
            .finish()
    }
}

/// One checkpointed RDD partition: the materialized records (type-erased),
/// their serialized size, and the nodes holding a replica.
#[derive(Clone)]
pub struct CheckpointBlock {
    /// Type-erased `Arc<Vec<T>>` with the partition's records.
    pub data: Arc<dyn Any + Send + Sync>,
    /// Serialized byte size charged for writes and reads of this block.
    pub bytes: u64,
    /// Nodes holding a replica; the first is the primary (the node the
    /// checkpointing task ran on).
    pub replicas: Vec<NodeId>,
}

impl std::fmt::Debug for CheckpointBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointBlock")
            .field("bytes", &self.bytes)
            .field("replicas", &self.replicas)
            .finish()
    }
}

/// The simulated distributed file system of one cluster.
pub struct SimHdfs {
    spec: ClusterSpec,
    cost: CostModel,
    block_size: RwLock<u64>,
    files: RwLock<BTreeMap<String, DfsFile>>,
    /// Checkpointed RDD partitions, keyed by (checkpoint RDD id, partition).
    checkpoints: RwLock<BTreeMap<(u64, usize), CheckpointBlock>>,
}

impl SimHdfs {
    /// A fresh, empty file system for the given cluster.
    pub fn new(spec: ClusterSpec, cost: CostModel) -> Self {
        SimHdfs {
            spec,
            cost,
            block_size: RwLock::new(DEFAULT_BLOCK_SIZE),
            files: RwLock::new(BTreeMap::new()),
            checkpoints: RwLock::new(BTreeMap::new()),
        }
    }

    /// Replication factor applied to checkpoint blocks (and file blocks),
    /// clamped to the cluster size.
    pub fn replication(&self) -> u32 {
        self.cost.hdfs_replication.min(self.spec.nodes).max(1)
    }

    /// Store one checkpointed partition with replication. The primary
    /// replica lives on `primary` (the node that materialized the
    /// partition); the remaining replicas are placed deterministically on
    /// the following nodes, exactly like file blocks. Returns the replica
    /// set.
    pub fn checkpoint_put(
        &self,
        owner: u64,
        partition: usize,
        data: Arc<dyn Any + Send + Sync>,
        bytes: u64,
        primary: NodeId,
    ) -> Vec<NodeId> {
        let replicas: Vec<NodeId> = (0..self.replication())
            .map(|r| NodeId((primary.0 + r) % self.spec.nodes))
            .collect();
        self.checkpoints.write().insert(
            (owner, partition),
            CheckpointBlock {
                data,
                bytes,
                replicas: replicas.clone(),
            },
        );
        replicas
    }

    /// Look up a checkpointed partition. Returns `None` when the partition
    /// was never written, was removed, or lost all of its replicas.
    pub fn checkpoint_get(&self, owner: u64, partition: usize) -> Option<CheckpointBlock> {
        self.checkpoints.read().get(&(owner, partition)).cloned()
    }

    /// Drop every partition checkpointed under `owner` (the simulated
    /// equivalent of deleting the checkpoint directory). Returns how many
    /// partitions were removed.
    pub fn checkpoint_remove(&self, owner: u64) -> usize {
        let mut g = self.checkpoints.write();
        let before = g.len();
        g.retain(|(o, _), _| *o != owner);
        before - g.len()
    }

    /// A node was lost: drop its checkpoint replicas. Blocks that lose
    /// *all* replicas disappear entirely (subsequent reads see `None`),
    /// which with the default 3× replication requires losing three nodes.
    pub fn checkpoint_drop_node(&self, node: NodeId) {
        let mut g = self.checkpoints.write();
        for block in g.values_mut() {
            block.replicas.retain(|r| *r != node);
        }
        g.retain(|_, b| !b.replicas.is_empty());
    }

    /// (blocks, total bytes) currently held in the checkpoint store.
    pub fn checkpoint_stats(&self) -> (usize, u64) {
        let g = self.checkpoints.read();
        (g.len(), g.values().map(|b| b.bytes).sum())
    }

    /// Current block size used for newly written files.
    pub fn block_size(&self) -> u64 {
        *self.block_size.read()
    }

    /// Change the block size for subsequently written files. The default is
    /// Hadoop's stock 64 MiB — deliberately kept for the paper experiments,
    /// where megabyte-scale inputs then yield only 1–2 map tasks per
    /// MapReduce job (see `DESIGN.md` §5); tests use small blocks to
    /// exercise multi-block layouts.
    pub fn set_block_size(&self, bytes: u64) {
        assert!(bytes > 0, "block size must be positive");
        *self.block_size.write() = bytes;
    }

    /// Store a file; errors if the name is taken.
    pub fn put(&self, name: impl Into<String>, lines: Vec<String>) -> Result<DfsFile, DfsError> {
        let name = name.into();
        {
            let files = self.files.read();
            if files.contains_key(&name) {
                return Err(DfsError::AlreadyExists(name));
            }
        }
        let file = self.build_file(name.clone(), lines);
        self.files.write().insert(name, file.clone());
        Ok(file)
    }

    /// Store a file, replacing any previous version.
    pub fn put_overwrite(&self, name: impl Into<String>, lines: Vec<String>) -> DfsFile {
        let name = name.into();
        let file = self.build_file(name.clone(), lines);
        self.files.write().insert(name, file.clone());
        file
    }

    /// Look up a file by name.
    pub fn get(&self, name: &str) -> Result<DfsFile, DfsError> {
        self.files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DfsError::NotFound(name.to_string()))
    }

    /// Remove a file; errors if absent.
    pub fn delete(&self, name: &str) -> Result<(), DfsError> {
        self.files
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DfsError::NotFound(name.to_string()))
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// All file names, sorted.
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    fn build_file(&self, name: String, lines: Vec<String>) -> DfsFile {
        let block_size = self.block_size();
        let mut offsets = Vec::with_capacity(lines.len() + 1);
        offsets.push(0u64);
        for l in &lines {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + l.len() as u64 + 1); // +1 for the newline
        }

        // Cut blocks at line boundaries once the byte budget is exceeded.
        let mut blocks = Vec::new();
        let mut start = 0usize;
        let mut start_off = 0u64;
        for i in 0..lines.len() {
            let end_off = offsets[i + 1];
            if end_off - start_off >= block_size {
                blocks.push(start..i + 1);
                start = i + 1;
                start_off = end_off;
            }
        }
        if start < lines.len() || blocks.is_empty() {
            blocks.push(start..lines.len());
        }

        let replication = self.cost.hdfs_replication.min(self.spec.nodes).max(1);
        let blocks = blocks
            .into_iter()
            .enumerate()
            .map(|(index, range)| {
                let bytes = offsets[range.end] - offsets[range.start];
                let replicas = (0..replication)
                    .map(|r| NodeId((index as u32 + r) % self.spec.nodes))
                    .collect();
                BlockInfo {
                    index,
                    lines: range,
                    bytes,
                    replicas,
                }
            })
            .collect();

        DfsFile {
            inner: Arc::new(FileInner {
                name,
                lines: Arc::new(lines),
                offsets,
                blocks,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GIB;

    fn hdfs() -> SimHdfs {
        SimHdfs::new(ClusterSpec::new(4, 2, GIB), CostModel::hadoop_era())
    }

    fn lines(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("line {i}")).collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let fs = hdfs();
        let f = fs.put("a.dat", lines(10)).unwrap();
        assert_eq!(f.num_lines(), 10);
        let g = fs.get("a.dat").unwrap();
        assert_eq!(g.lines()[3], "line 3");
        assert!(fs.exists("a.dat"));
        assert_eq!(fs.list(), vec!["a.dat".to_string()]);
    }

    #[test]
    fn duplicate_put_rejected_but_overwrite_allowed() {
        let fs = hdfs();
        fs.put("a", lines(1)).unwrap();
        assert!(matches!(
            fs.put("a", lines(1)),
            Err(DfsError::AlreadyExists(_))
        ));
        let f = fs.put_overwrite("a", lines(5));
        assert_eq!(f.num_lines(), 5);
    }

    #[test]
    fn missing_file_errors() {
        let fs = hdfs();
        assert!(matches!(fs.get("nope"), Err(DfsError::NotFound(_))));
        assert!(matches!(fs.delete("nope"), Err(DfsError::NotFound(_))));
    }

    #[test]
    fn byte_accounting_is_exact() {
        let fs = hdfs();
        let f = fs.put("b", vec!["ab".into(), "cde".into()]).unwrap();
        // "ab\n" + "cde\n" = 7 bytes
        assert_eq!(f.bytes(), 7);
        assert_eq!(f.range_bytes(0..1), 3);
        assert_eq!(f.range_bytes(1..2), 4);
    }

    #[test]
    fn small_file_is_one_block() {
        let fs = hdfs();
        let f = fs.put("c", lines(100)).unwrap();
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.blocks()[0].lines, 0..100);
    }

    #[test]
    fn block_size_splits_files() {
        let fs = hdfs();
        fs.set_block_size(16); // tiny blocks: every ~2 lines
        let f = fs.put_overwrite("d", lines(10));
        assert!(f.blocks().len() > 1, "expected multiple blocks");
        // Blocks tile the file exactly.
        let mut covered = 0;
        let mut total_bytes = 0;
        for b in f.blocks() {
            assert_eq!(b.lines.start, covered);
            covered = b.lines.end;
            total_bytes += b.bytes;
        }
        assert_eq!(covered, 10);
        assert_eq!(total_bytes, f.bytes());
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let fs = hdfs();
        fs.set_block_size(16);
        let f = fs.put_overwrite("e", lines(20));
        for b in f.blocks() {
            let mut r = b.replicas.clone();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), b.replicas.len(), "replicas must be distinct");
            assert_eq!(b.replicas.len(), 3);
        }
    }

    #[test]
    fn splits_cover_file_and_respect_min() {
        let fs = hdfs();
        let f = fs.put("f", lines(97)).unwrap();
        let splits = f.splits(8);
        assert!(splits.len() >= 8);
        let mut covered = 0;
        let mut total = 0;
        for s in &splits {
            assert_eq!(s.lines.start, covered);
            covered = s.lines.end;
            total += s.bytes;
        }
        assert_eq!(covered, 97);
        assert_eq!(total, f.bytes());
    }

    #[test]
    fn splits_never_exceed_line_count() {
        let fs = hdfs();
        let f = fs.put("g", lines(3)).unwrap();
        let splits = f.splits(10);
        assert!(splits.len() <= 3);
    }

    #[test]
    fn checkpoint_blocks_replicate_and_round_trip() {
        let fs = hdfs();
        let data: Arc<Vec<u64>> = Arc::new(vec![1, 2, 3]);
        let replicas = fs.checkpoint_put(7, 0, data.clone(), 24, NodeId(2));
        // 3x replication on 4 nodes, wrapping from the primary.
        assert_eq!(replicas, vec![NodeId(2), NodeId(3), NodeId(0)]);
        let block = fs.checkpoint_get(7, 0).expect("stored");
        assert_eq!(block.bytes, 24);
        assert_eq!(block.replicas, replicas);
        let back = block.data.downcast::<Vec<u64>>().expect("typed round-trip");
        assert_eq!(*back, vec![1, 2, 3]);
        assert_eq!(fs.checkpoint_stats(), (1, 24));
        assert!(fs.checkpoint_get(7, 1).is_none());
        assert!(fs.checkpoint_get(8, 0).is_none());
    }

    #[test]
    fn checkpoint_remove_drops_only_one_owner() {
        let fs = hdfs();
        let d: Arc<Vec<u64>> = Arc::new(vec![]);
        fs.checkpoint_put(1, 0, d.clone(), 8, NodeId(0));
        fs.checkpoint_put(1, 1, d.clone(), 8, NodeId(1));
        fs.checkpoint_put(2, 0, d, 8, NodeId(2));
        assert_eq!(fs.checkpoint_remove(1), 2);
        assert_eq!(fs.checkpoint_stats(), (1, 8));
        assert_eq!(fs.checkpoint_remove(1), 0);
    }

    #[test]
    fn checkpoint_survives_node_loss_until_replicas_exhaust() {
        let fs = hdfs();
        let d: Arc<Vec<u64>> = Arc::new(vec![42]);
        fs.checkpoint_put(5, 0, d, 16, NodeId(1));
        fs.checkpoint_drop_node(NodeId(1));
        let block = fs.checkpoint_get(5, 0).expect("replicas remain");
        assert_eq!(block.replicas, vec![NodeId(2), NodeId(3)]);
        fs.checkpoint_drop_node(NodeId(2));
        fs.checkpoint_drop_node(NodeId(3));
        assert!(fs.checkpoint_get(5, 0).is_none(), "all replicas lost");
    }
}
