//! Deterministic hashing.
//!
//! The engines hash-partition shuffle data; the default `std` hasher is
//! randomly seeded per process, which would make partition contents — and
//! therefore the virtual-time accounting — nondeterministic. This module
//! provides an in-tree implementation of the Fx hash algorithm (the
//! `rustc-hash` algorithm: multiply-xor over machine words), which is stable,
//! extremely fast for the small keys used here, and removes the dependency.

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: `hash = (hash rotl 5 ^ word) * SEED` per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the deterministic Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the deterministic Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a value to a stable 64-bit digest.
pub fn fx_hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Deterministically assign a key to one of `buckets` partitions.
pub fn bucket_of<T: Hash + ?Sized>(value: &T, buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    (fx_hash64(value) % buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_across_hasher_instances() {
        assert_eq!(fx_hash64(&42u64), fx_hash64(&42u64));
        assert_eq!(fx_hash64("hello"), fx_hash64("hello"));
        assert_eq!(fx_hash64(&vec![1u32, 2, 3]), fx_hash64(&vec![1u32, 2, 3]));
    }

    #[test]
    fn hash_distinguishes_values() {
        assert_ne!(fx_hash64(&1u64), fx_hash64(&2u64));
        assert_ne!(fx_hash64("a"), fx_hash64("b"));
    }

    #[test]
    fn bucket_in_range_and_covers() {
        let buckets = 7;
        let mut seen = vec![false; buckets];
        for i in 0..1000u64 {
            let b = bucket_of(&i, buckets);
            assert!(b < buckets);
            seen[b] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "1000 keys should hit all 7 buckets"
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn partial_word_writes() {
        // 9 bytes exercises both the chunk and the remainder path.
        assert_eq!(fx_hash64(&b"123456789"[..]), fx_hash64(&b"123456789"[..]));
        assert_ne!(fx_hash64(&b"123456789"[..]), fx_hash64(&b"123456780"[..]));
    }
}
