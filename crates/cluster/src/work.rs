//! Per-task work counters.
//!
//! Tasks running on either engine record *what they did* — records in/out,
//! abstract CPU units, bytes touched per medium — into a [`WorkCounters`].
//! The counters are exact functions of the input data, which is what makes
//! the virtual timing deterministic.

use crate::costmodel::CostModel;
use crate::time::SimDuration;

/// Everything a task did, in engine-neutral units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Records consumed from the task's input iterator.
    pub records_in: u64,
    /// Records produced by the task.
    pub records_out: u64,
    /// Abstract CPU work units beyond per-record bookkeeping
    /// (hash-tree node visits, candidate comparisons, sort comparisons…).
    pub cpu_units: u64,
    /// Bytes read from node-local disk (HDFS-local block reads, spill reads).
    pub disk_read_bytes: u64,
    /// Bytes written to node-local disk (spills).
    pub disk_write_bytes: u64,
    /// Bytes scanned from the in-memory cache.
    pub mem_read_bytes: u64,
    /// Bytes fetched over the network (remote blocks, shuffle fetches).
    pub net_bytes: u64,
    /// Bytes passed through a serialization boundary.
    pub ser_bytes: u64,
    /// Microseconds the task spent stalled waiting (transient-fetch retry
    /// backoff). Kept in integer microseconds so the counters stay `Eq`.
    pub stall_micros: u64,
}

impl WorkCounters {
    /// A fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` input records. Each input record costs one CPU unit of
    /// per-record bookkeeping on top of whatever the operator adds.
    pub fn add_records_in(&mut self, n: u64) {
        self.records_in += n;
        self.cpu_units += n;
    }

    /// Record `n` output records (one CPU unit each).
    pub fn add_records_out(&mut self, n: u64) {
        self.records_out += n;
        self.cpu_units += n;
    }

    /// Record extra CPU work (data-structure traversal, comparisons…).
    pub fn add_cpu(&mut self, units: u64) {
        self.cpu_units += units;
    }

    /// Record a node-local disk read.
    pub fn add_disk_read(&mut self, bytes: u64) {
        self.disk_read_bytes += bytes;
    }

    /// Record a node-local disk write.
    pub fn add_disk_write(&mut self, bytes: u64) {
        self.disk_write_bytes += bytes;
    }

    /// Record a cached-memory scan.
    pub fn add_mem_read(&mut self, bytes: u64) {
        self.mem_read_bytes += bytes;
    }

    /// Record a network fetch.
    pub fn add_net(&mut self, bytes: u64) {
        self.net_bytes += bytes;
    }

    /// Record bytes crossing a serialization boundary.
    pub fn add_ser(&mut self, bytes: u64) {
        self.ser_bytes += bytes;
    }

    /// Record time the task spent stalled (retry backoff), in microseconds
    /// of virtual time.
    pub fn add_stall_micros(&mut self, micros: u64) {
        self.stall_micros += micros;
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &WorkCounters) {
        self.records_in += other.records_in;
        self.records_out += other.records_out;
        self.cpu_units += other.cpu_units;
        self.disk_read_bytes += other.disk_read_bytes;
        self.disk_write_bytes += other.disk_write_bytes;
        self.mem_read_bytes += other.mem_read_bytes;
        self.net_bytes += other.net_bytes;
        self.ser_bytes += other.ser_bytes;
        self.stall_micros += other.stall_micros;
    }

    /// Convert the counters into a virtual duration under `model`, *excluding*
    /// framework per-task overheads (the engine adds those, because they
    /// differ between MapReduce and Spark). Stall time (retry backoff) is
    /// model-independent wall waiting and is added as-is.
    pub fn data_time(&self, model: &CostModel) -> SimDuration {
        model.cpu(self.cpu_units)
            + model.disk_read(self.disk_read_bytes)
            + model.disk_write(self.disk_write_bytes)
            + model.mem_scan(self.mem_read_bytes)
            + model.net_transfer(self.net_bytes)
            + model.serialize(self.ser_bytes)
            + SimDuration::from_secs(self.stall_micros as f64 / 1e6)
    }
}

/// Full per-task profile: physical work plus the engine-level attribution
/// the observability layer reports (shuffle/broadcast bytes, cache
/// behaviour). The physical side of every attributed byte is *also* charged
/// to [`WorkCounters`] — the attribution fields say *why* the bytes moved,
/// not *that* they moved, so merging a profile never double-counts time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskProfile {
    /// Physical work counters (drive virtual time).
    pub work: WorkCounters,
    /// Bytes fetched from shuffle map outputs (local + remote).
    pub shuffle_read_bytes: u64,
    /// Bytes written to shuffle files on the map side.
    pub shuffle_write_bytes: u64,
    /// Bytes of broadcast variables read by the task.
    pub broadcast_read_bytes: u64,
    /// Partition reads served from the cache (any tier).
    pub cache_hits: u64,
    /// Partition reads that missed the cache and recomputed.
    pub cache_misses: u64,
    /// Records entering the task's pipeline from a stable input: a source
    /// partition, a cache hit, or a shuffle fetch.
    pub records_read: u64,
    /// Records leaving the task through a pipeline breaker: a shuffle
    /// map-side write, a cache insert, or a driver fetch.
    pub records_written: u64,
    /// Bytes the task buffered into `Vec`s at pipeline breakers. Fused
    /// stages only materialize at breakers; the eager reference evaluator
    /// materializes at every operator, so this counter is the direct
    /// measure of what fusion saves.
    pub bytes_materialized: u64,
    /// Execution-memory governor outcomes for this task (peak bytes held,
    /// spills, OOM events). All-zero unless the fault plan arms the
    /// governor. `peak_execution_bytes` merges with `max`, the rest sum.
    pub mem: crate::fault::MemoryCounters,
}

impl TaskProfile {
    /// A fresh, all-zero profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &TaskProfile) {
        self.work.merge(&other.work);
        self.shuffle_read_bytes += other.shuffle_read_bytes;
        self.shuffle_write_bytes += other.shuffle_write_bytes;
        self.broadcast_read_bytes += other.broadcast_read_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.records_read += other.records_read;
        self.records_written += other.records_written;
        self.bytes_materialized += other.bytes_materialized;
        self.mem.merge(&other.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_merge_adds_attribution() {
        let mut a = TaskProfile::new();
        a.work.add_records_in(2);
        a.shuffle_read_bytes = 10;
        a.cache_hits = 1;
        let mut b = TaskProfile::new();
        b.work.add_records_in(3);
        b.shuffle_write_bytes = 20;
        b.cache_misses = 2;
        b.records_read = 7;
        b.records_written = 4;
        b.bytes_materialized = 64;
        a.mem.peak_execution_bytes = 500;
        a.mem.spills = 1;
        b.mem.peak_execution_bytes = 300;
        b.mem.spills = 2;
        a.merge(&b);
        assert_eq!(a.work.records_in, 5);
        assert_eq!(a.mem.peak_execution_bytes, 500, "peak merges with max");
        assert_eq!(a.mem.spills, 3);
        assert_eq!(a.shuffle_read_bytes, 10);
        assert_eq!(a.shuffle_write_bytes, 20);
        assert_eq!(a.cache_hits, 1);
        assert_eq!(a.cache_misses, 2);
        assert_eq!(a.records_read, 7);
        assert_eq!(a.records_written, 4);
        assert_eq!(a.bytes_materialized, 64);
    }

    #[test]
    fn records_also_cost_cpu() {
        let mut w = WorkCounters::new();
        w.add_records_in(10);
        w.add_records_out(5);
        assert_eq!(w.records_in, 10);
        assert_eq!(w.records_out, 5);
        assert_eq!(w.cpu_units, 15);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = WorkCounters::new();
        a.add_records_in(3);
        a.add_disk_read(100);
        let mut b = WorkCounters::new();
        b.add_records_in(4);
        b.add_net(50);
        a.merge(&b);
        assert_eq!(a.records_in, 7);
        assert_eq!(a.disk_read_bytes, 100);
        assert_eq!(a.net_bytes, 50);
    }

    #[test]
    fn data_time_is_sum_of_components() {
        let m = CostModel::zero_overhead();
        let mut w = WorkCounters::new();
        w.add_cpu(10_000_000); // 1s at 100ns/unit
        w.add_disk_read(100_000_000); // 1s at 100 MB/s
        let t = w.data_time(&m);
        assert!((t.as_secs() - 2.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn zero_counters_cost_nothing() {
        let m = CostModel::hadoop_era();
        assert_eq!(WorkCounters::new().data_time(&m), SimDuration::ZERO);
    }
}
