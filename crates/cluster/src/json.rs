//! Minimal JSON support for the trace exporter.
//!
//! The workspace builds fully offline, so there is no serde; the Chrome
//! trace sink emits JSON through [`JsonValue`] and the round-trip tests
//! parse it back with [`parse`]. The subset implemented is exactly what the
//! trace format needs: objects, arrays, strings, finite numbers, booleans
//! and null, with standard escape handling.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys are ordered (BTreeMap) so emission is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with ordered keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Build an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Read as a number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on objects: `v.get("ts")`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                debug_assert!(n.is_finite(), "JSON numbers must be finite");
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a JSON document. Returns a human-readable error (with byte offset)
/// on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.eat_literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null").map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates are not produced by our emitter.
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(JsonValue::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested_value() {
        let v = JsonValue::object(vec![
            ("name", "trace \"quoted\"\n".into()),
            ("pid", 3u64.into()),
            ("ts", 1.5.into()),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "args",
                JsonValue::Array(vec![1u64.into(), "two".into(), JsonValue::Bool(false)]),
            ),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(JsonValue::Number(42.0).to_string(), "42");
        assert_eq!(JsonValue::Number(0.5).to_string(), "0.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , -2.5e1 ] , \"b\" : \"x\\ty\\u0041\" } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\tyA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
