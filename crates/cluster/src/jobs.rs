//! Multi-job scheduling: pools, the job queue, and executor grants.
//!
//! One `SimCluster` per job keeps each job's *virtual timeline* independent
//! (virtual clocks never interleave), while a shared [`JobQueue`] decides how
//! much of the physical topology each job may use and in what order FIFO
//! jobs start. Grants are **node slices** — contiguous runs of nodes — that
//! a job's [`crate::sched::VirtualScheduler`] is restricted to.
//!
//! Determinism contract: grants are a pure function of (topology, registered
//! pools, the set of jobs submitted when the grant is read). Benches submit
//! every job on the driver thread *before* any job binds its grant, so the
//! division is identical run-to-run regardless of how the real OS threads
//! interleave afterwards. Completion state never influences grants; FIFO
//! queue offsets are sums of predecessors' reported final virtual times,
//! which are themselves deterministic.
//!
//! Pool semantics:
//!
//! * **Fair** pools share the cluster: each active pool (one with at least
//!   one submitted job) receives a contiguous node range proportional to its
//!   weight, floored at `max(1, min_share_nodes)`, remainders assigned by
//!   largest fractional part (ties to registration order). Jobs inside a
//!   fair pool split the pool's range evenly and start immediately.
//! * **FIFO** pools serialize: every job gets the whole pool range, but job
//!   k blocks in [`JobTicket::await_start`] until jobs 0..k of the pool have
//!   completed, and is charged their summed virtual makespans as
//!   `scheduler_queue` time on its first stage.
//!
//! The queue also owns the cluster-wide shared blacklist: node blacklistings
//! published by one job's fault handling are visible to concurrent jobs'
//! placement (a genuinely bad node is bad for everyone), but never silently —
//! each foreign exclusion is attributed to the consuming job's
//! `sched.blacklist_shared_hits` counter. Entries retire when the publishing
//! job completes.

use crate::sync::{Condvar, Mutex};
use crate::time::SimDuration;
use std::sync::Arc;

/// Default dynamic-allocation ramp interval (seconds of virtual time per
/// doubling). Zero disables dynamic allocation: jobs hold their full grant
/// from the first stage.
pub const DEFAULT_RAMP_INTERVAL: f64 = 0.0;

/// Default straggler threshold for skew-aware partitioning, as a multiple
/// of the stage's median estimated partition duration. Zero disables
/// splitting.
pub const DEFAULT_SKEW_THRESHOLD: f64 = 0.0;

/// Default share of a node's memory given to the storage (cache) region —
/// the `* 6 / 10` the cache manager has always used.
pub const DEFAULT_STORAGE_FRACTION: f64 = 0.6;

/// Tunable scheduler behavior, attached to a `SimCluster`.
///
/// The default configuration reproduces the pre-multi-job scheduler
/// bit-for-bit: default locality wait, no dynamic allocation, no skew
/// splitting, full-cluster grant.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerConfig {
    /// Delay-scheduling wait in virtual seconds (`spark.locality.wait`).
    /// `0` disables locality preference entirely; a very large value pins
    /// tasks strictly to their preferred node.
    pub locality_wait: f64,
    /// Virtual seconds between executor-count doublings when a job ramps
    /// up from `initial_executors`. `0` disables dynamic allocation.
    pub ramp_interval: f64,
    /// Executors (nodes) a ramping job starts with.
    pub initial_executors: u32,
    /// Idle gap (virtual seconds between consecutive stages) after which a
    /// ramped-up job releases its executors back to `initial_executors`.
    /// `0` means never release.
    pub executor_idle_timeout: f64,
    /// Split a partition whose estimated duration exceeds this multiple of
    /// the stage's median estimate. `0` disables skew-aware splitting.
    pub skew_threshold: f64,
    /// Upper bound on the pieces one straggler partition splits into.
    pub max_skew_splits: u32,
    /// Fraction of each node's memory given to the storage (cache) region;
    /// the rest is execution memory (`spark.memory.storageFraction`). Must
    /// lie in `(0, 1]`. The 0.6 default reproduces the historical
    /// `memory_per_node * 6 / 10` cache capacity bit-for-bit.
    pub storage_fraction: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            locality_wait: crate::sched::DEFAULT_LOCALITY_WAIT,
            ramp_interval: DEFAULT_RAMP_INTERVAL,
            initial_executors: 1,
            executor_idle_timeout: 0.0,
            skew_threshold: DEFAULT_SKEW_THRESHOLD,
            max_skew_splits: 4,
            storage_fraction: DEFAULT_STORAGE_FRACTION,
        }
    }
}

/// How jobs inside one pool share the pool's executor grant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Jobs serialize: one at a time, in submission order, each holding the
    /// whole pool range; successors are charged queue time.
    Fifo,
    /// Jobs run concurrently, splitting the pool range evenly.
    Fair,
}

/// One scheduling pool: a named share of the cluster.
#[derive(Clone, Debug)]
pub struct PoolSpec {
    /// Pool name, used as the tag on per-pool metrics
    /// (`sched.pool.<name>.jobs`).
    pub name: String,
    /// Intra-pool policy.
    pub policy: PoolPolicy,
    /// Relative share of the cluster versus other active pools.
    pub weight: f64,
    /// Minimum nodes the pool receives while it has any job, regardless of
    /// weight arithmetic (best-effort once floors exceed the cluster).
    pub min_share_nodes: u32,
}

impl PoolSpec {
    /// A fair pool with the given relative weight and no min share.
    pub fn fair(name: &str, weight: f64) -> Self {
        PoolSpec {
            name: name.to_string(),
            policy: PoolPolicy::Fair,
            weight: weight.max(f64::MIN_POSITIVE),
            min_share_nodes: 0,
        }
    }

    /// A FIFO pool with the given relative weight.
    pub fn fifo(name: &str, weight: f64) -> Self {
        PoolSpec {
            name: name.to_string(),
            policy: PoolPolicy::Fifo,
            weight: weight.max(f64::MIN_POSITIVE),
            min_share_nodes: 0,
        }
    }

    /// Set the pool's minimum node share.
    pub fn min_share(mut self, nodes: u32) -> Self {
        self.min_share_nodes = nodes;
        self
    }
}

/// Identifier of one submitted job, unique within its queue.
pub type JobId = u64;

struct JobRecord {
    pool: usize,
    #[allow(dead_code)]
    name: String,
    done: bool,
    final_virtual: SimDuration,
}

struct QueueState {
    pools: Vec<PoolSpec>,
    jobs: Vec<JobRecord>,
    completed: u64,
}

struct QueueShared {
    state: Mutex<QueueState>,
    cv: Condvar,
    nodes: u32,
    blacklist: SharedBlacklist,
}

/// The cluster-wide multi-job queue. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct JobQueue {
    shared: Arc<QueueShared>,
}

impl JobQueue {
    /// A queue scheduling over `total_nodes` nodes, with a single default
    /// fair pool named `"default"` (weight 1).
    pub fn new(total_nodes: u32) -> Self {
        let q = JobQueue {
            shared: Arc::new(QueueShared {
                state: Mutex::new(QueueState {
                    pools: Vec::new(),
                    jobs: Vec::new(),
                    completed: 0,
                }),
                cv: Condvar::new(),
                nodes: total_nodes.max(1),
                blacklist: SharedBlacklist::new(),
            }),
        };
        q.add_pool(PoolSpec::fair("default", 1.0));
        q
    }

    /// Register a pool. Re-registering a name replaces its spec (so tests
    /// can reweight); grants of already-submitted jobs change accordingly
    /// the next time they are read.
    pub fn add_pool(&self, spec: PoolSpec) {
        let mut st = self.shared.state.lock();
        if let Some(p) = st.pools.iter_mut().find(|p| p.name == spec.name) {
            *p = spec;
        } else {
            st.pools.push(spec);
        }
    }

    /// Nodes this queue schedules over.
    pub fn nodes(&self) -> u32 {
        self.shared.nodes
    }

    /// Submit a job to `pool` (auto-registered as a weight-1 fair pool if
    /// unknown). Returns the ticket the job binds to its cluster.
    pub fn submit(&self, pool: &str, name: &str) -> JobTicket {
        let mut st = self.shared.state.lock();
        let pool_idx = match st.pools.iter().position(|p| p.name == pool) {
            Some(i) => i,
            None => {
                st.pools.push(PoolSpec::fair(pool, 1.0));
                st.pools.len() - 1
            }
        };
        let id = st.jobs.len() as JobId;
        st.jobs.push(JobRecord {
            pool: pool_idx,
            name: name.to_string(),
            done: false,
            final_virtual: SimDuration::ZERO,
        });
        JobTicket {
            queue: self.clone(),
            id,
            pool: pool.to_string(),
        }
    }

    /// Number of jobs submitted so far.
    pub fn jobs_submitted(&self) -> u64 {
        self.shared.state.lock().jobs.len() as u64
    }

    /// Number of jobs completed so far.
    pub fn jobs_completed(&self) -> u64 {
        self.shared.state.lock().completed
    }

    /// The cluster-owned shared blacklist.
    pub fn shared_blacklist(&self) -> &SharedBlacklist {
        &self.shared.blacklist
    }

    /// Per-pool contiguous node ranges `(lo, count)`, indexed like
    /// `state.pools`; inactive pools (no submitted job) get `(0, 0)`.
    fn pool_ranges(&self, st: &QueueState) -> Vec<(usize, usize)> {
        let nodes = self.shared.nodes as usize;
        let active: Vec<usize> = (0..st.pools.len())
            .filter(|&i| st.jobs.iter().any(|j| j.pool == i))
            .collect();
        let mut counts = vec![0usize; st.pools.len()];
        if active.is_empty() {
            return counts.iter().map(|_| (0, 0)).collect();
        }
        let total_w: f64 = active.iter().map(|&i| st.pools[i].weight).sum();
        // Largest-remainder apportionment of `nodes` across active pools.
        let mut leftover = nodes;
        let mut fracs: Vec<(f64, usize)> = Vec::new();
        for &i in &active {
            let ideal = nodes as f64 * st.pools[i].weight / total_w;
            let base = (ideal.floor() as usize).min(leftover);
            counts[i] = base;
            leftover -= base;
            fracs.push((ideal - ideal.floor(), i));
        }
        // Stable: larger fraction first, registration order breaks ties.
        fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite fractions"));
        for (_, i) in fracs {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        // Best-effort floors: raise starved pools to max(1, min_share),
        // taking nodes from the pool furthest above its own floor.
        for &i in &active {
            let floor = (st.pools[i].min_share_nodes as usize).max(1).min(nodes);
            while counts[i] < floor {
                let donor = active
                    .iter()
                    .copied()
                    .filter(|&j| j != i)
                    .max_by_key(|&j| {
                        let f = (st.pools[j].min_share_nodes as usize).max(1);
                        counts[j].saturating_sub(f)
                    })
                    .filter(|&j| {
                        let f = (st.pools[j].min_share_nodes as usize).max(1);
                        counts[j] > f
                    });
                match donor {
                    Some(j) => {
                        counts[j] -= 1;
                        counts[i] += 1;
                    }
                    None => break,
                }
            }
        }
        // Lay active pools out contiguously in registration order.
        let mut lo = 0usize;
        let mut ranges = vec![(0usize, 0usize); st.pools.len()];
        for &i in &active {
            ranges[i] = (lo.min(nodes.saturating_sub(1)), counts[i]);
            lo += counts[i];
        }
        ranges
    }

    /// The node slice `(node_lo, node_count)` job `id` holds right now —
    /// a pure function of the submitted-job set (see module docs).
    pub fn grant_for(&self, id: JobId) -> (usize, usize) {
        let st = self.shared.state.lock();
        let job = &st.jobs[id as usize];
        let (pool_lo, pool_count) = self.pool_ranges(&st)[job.pool];
        let pool_count = pool_count.max(1);
        match st.pools[job.pool].policy {
            // FIFO jobs hold the whole pool range, one at a time.
            PoolPolicy::Fifo => (pool_lo, pool_count),
            PoolPolicy::Fair => {
                let peers: Vec<JobId> = st
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| j.pool == job.pool)
                    .map(|(i, _)| i as JobId)
                    .collect();
                let k = peers.len().max(1);
                let rank = peers.iter().position(|&p| p == id).expect("job in pool");
                let per = (pool_count / k).max(1);
                // Oversubscription (more jobs than nodes) overlaps slices;
                // harmless since each job has its own virtual timeline.
                let lo = pool_lo + (rank * per).min(pool_count - per.min(pool_count));
                (lo, per)
            }
        }
    }

    /// Block until job `id` may start (immediately for fair pools), and
    /// return the virtual queue time to charge to its first stage: the sum
    /// of the final virtual times of the FIFO predecessors it waited on.
    pub fn await_start(&self, id: JobId) -> SimDuration {
        let mut st = self.shared.state.lock();
        let pool = st.jobs[id as usize].pool;
        if st.pools[pool].policy == PoolPolicy::Fair {
            return SimDuration::ZERO;
        }
        loop {
            let pending: Vec<usize> = st
                .jobs
                .iter()
                .enumerate()
                .filter(|&(i, j)| j.pool == pool && (i as JobId) < id && !j.done)
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                return st
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|&(i, j)| j.pool == pool && (i as JobId) < id)
                    .map(|(_, j)| j.final_virtual)
                    .fold(SimDuration::ZERO, |a, b| a + b);
            }
            st = self.shared.cv.wait(st);
        }
    }

    /// Mark job `id` complete at final virtual time `final_virtual`, wake
    /// FIFO successors, and retire the job's shared-blacklist entries.
    pub fn complete(&self, id: JobId, final_virtual: SimDuration) {
        {
            let mut st = self.shared.state.lock();
            let job = &mut st.jobs[id as usize];
            if job.done {
                return;
            }
            job.done = true;
            job.final_virtual = final_virtual;
            st.completed += 1;
        }
        self.shared.blacklist.remove_job(id);
        self.shared.cv.notify_all();
    }
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("JobQueue")
            .field("nodes", &self.shared.nodes)
            .field("pools", &st.pools.len())
            .field("jobs", &st.jobs.len())
            .field("completed", &st.completed)
            .finish()
    }
}

/// One job's handle into the queue. Clone-able; all clones refer to the
/// same submitted job.
#[derive(Clone)]
pub struct JobTicket {
    queue: JobQueue,
    id: JobId,
    pool: String,
}

impl JobTicket {
    /// This job's queue-wide id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Name of the pool the job was submitted to.
    pub fn pool(&self) -> &str {
        &self.pool
    }

    /// The owning queue.
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Current executor grant (see [`JobQueue::grant_for`]).
    pub fn grant(&self) -> (usize, usize) {
        self.queue.grant_for(self.id)
    }

    /// Block until the job may start; returns the queue time to charge.
    pub fn await_start(&self) -> SimDuration {
        self.queue.await_start(self.id)
    }

    /// Report completion at `final_virtual` (idempotent).
    pub fn complete(&self, final_virtual: SimDuration) {
        self.queue.complete(self.id, final_virtual);
    }
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("id", &self.id)
            .field("pool", &self.pool)
            .finish()
    }
}

/// Cluster-owned blacklist visible across jobs: `(node, publishing job)`
/// pairs. A consuming job excludes *foreign* entries from placement and
/// counts each exclusion into its `sched.blacklist_shared_hits` counter —
/// sharing is deliberate, silence is not.
#[derive(Clone, Default)]
pub struct SharedBlacklist {
    entries: Arc<Mutex<Vec<(u32, JobId)>>>,
}

impl SharedBlacklist {
    /// An empty shared blacklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish: `job` blacklisted `node`.
    pub fn publish(&self, node: u32, job: JobId) {
        let mut g = self.entries.lock();
        if !g.iter().any(|&(n, j)| n == node && j == job) {
            g.push((node, job));
        }
    }

    /// Nodes blacklisted by jobs *other than* `job`, deduplicated, sorted.
    pub fn foreign_nodes(&self, job: JobId) -> Vec<u32> {
        let g = self.entries.lock();
        let mut nodes: Vec<u32> = g
            .iter()
            .filter(|&&(_, j)| j != job)
            .map(|&(n, _)| n)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Retire every entry published by `job` (called on job completion).
    pub fn remove_job(&self, job: JobId) {
        self.entries.lock().retain(|&(_, j)| j != job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_legacy_scheduler() {
        let c = SchedulerConfig::default();
        assert_eq!(c.locality_wait, crate::sched::DEFAULT_LOCALITY_WAIT);
        assert_eq!(c.ramp_interval, 0.0, "dynamic allocation off by default");
        assert_eq!(c.skew_threshold, 0.0, "skew splitting off by default");
        assert_eq!(c.storage_fraction, 0.6, "legacy 60% cache split");
    }

    #[test]
    fn fair_pools_split_by_weight() {
        let q = JobQueue::new(12);
        q.add_pool(PoolSpec::fair("interactive", 2.0));
        q.add_pool(PoolSpec::fair("batch", 1.0));
        let a = q.submit("interactive", "a");
        let b = q.submit("batch", "b");
        assert_eq!(a.grant(), (0, 8), "weight 2 of 3 over 12 nodes");
        assert_eq!(b.grant(), (8, 4), "weight 1 of 3, after interactive");
    }

    #[test]
    fn inactive_pools_get_nothing() {
        let q = JobQueue::new(10);
        q.add_pool(PoolSpec::fair("idle", 100.0));
        let a = q.submit("default", "only");
        assert_eq!(
            a.grant(),
            (0, 10),
            "idle pool has no jobs, default gets all"
        );
    }

    #[test]
    fn jobs_within_a_fair_pool_split_evenly() {
        let q = JobQueue::new(8);
        let a = q.submit("default", "a");
        let b = q.submit("default", "b");
        assert_eq!(a.grant(), (0, 4));
        assert_eq!(b.grant(), (4, 4));
        // A third job narrows everyone (8/3 = 2 each, contiguous).
        let c = q.submit("default", "c");
        assert_eq!(a.grant(), (0, 2));
        assert_eq!(b.grant(), (2, 2));
        assert_eq!(c.grant(), (4, 2));
    }

    #[test]
    fn min_share_floors_hold() {
        let q = JobQueue::new(10);
        q.add_pool(PoolSpec::fair("big", 100.0));
        q.add_pool(PoolSpec::fair("small", 0.001).min_share(3));
        let a = q.submit("big", "a");
        let b = q.submit("small", "b");
        assert_eq!(a.grant().1 + b.grant().1, 10);
        assert!(b.grant().1 >= 3, "min share honored: {:?}", b.grant());
    }

    #[test]
    fn oversubscribed_fair_pool_still_grants_a_node() {
        let q = JobQueue::new(2);
        let tickets: Vec<_> = (0..5)
            .map(|i| q.submit("default", &format!("j{i}")))
            .collect();
        for t in &tickets {
            let (lo, count) = t.grant();
            assert_eq!(count, 1);
            assert!(lo < 2);
        }
    }

    #[test]
    fn fifo_pool_serializes_and_charges_queue_time() {
        let q = JobQueue::new(4);
        q.add_pool(PoolSpec::fifo("etl", 1.0));
        let a = q.submit("etl", "first");
        let b = q.submit("etl", "second");
        // Both hold the whole pool range.
        assert_eq!(a.grant(), b.grant());
        assert_eq!(a.await_start(), SimDuration::ZERO);
        // b blocks until a completes; run the wait on a helper thread.
        let b2 = b.clone();
        let h = std::thread::spawn(move || b2.await_start());
        a.complete(SimDuration::from_secs(7.5));
        assert_eq!(h.join().expect("waiter"), SimDuration::from_secs(7.5));
        assert_eq!(q.jobs_completed(), 1);
    }

    #[test]
    fn fifo_offsets_accumulate_across_predecessors() {
        let q = JobQueue::new(4);
        q.add_pool(PoolSpec::fifo("etl", 1.0));
        let a = q.submit("etl", "a");
        let b = q.submit("etl", "b");
        let c = q.submit("etl", "c");
        a.complete(SimDuration::from_secs(2.0));
        b.complete(SimDuration::from_secs(3.0));
        assert_eq!(c.await_start(), SimDuration::from_secs(5.0));
    }

    #[test]
    fn complete_is_idempotent() {
        let q = JobQueue::new(4);
        let a = q.submit("default", "a");
        a.complete(SimDuration::from_secs(1.0));
        a.complete(SimDuration::from_secs(9.0));
        assert_eq!(q.jobs_completed(), 1);
    }

    #[test]
    fn shared_blacklist_attributes_and_retires() {
        let bl = SharedBlacklist::new();
        bl.publish(3, 0);
        bl.publish(5, 0);
        bl.publish(3, 0); // duplicate ignored
        bl.publish(7, 1);
        assert_eq!(bl.foreign_nodes(1), vec![3, 5], "job 1 sees job 0's nodes");
        assert_eq!(bl.foreign_nodes(0), vec![7]);
        bl.remove_job(0);
        assert!(
            bl.foreign_nodes(1).is_empty(),
            "entries retire with the job"
        );
    }

    #[test]
    fn grants_tile_the_cluster_for_many_pools() {
        let q = JobQueue::new(100);
        q.add_pool(PoolSpec::fair("a", 3.0));
        q.add_pool(PoolSpec::fair("b", 2.0));
        q.add_pool(PoolSpec::fifo("c", 1.0));
        let ja = q.submit("a", "ja");
        let jb = q.submit("b", "jb");
        let jc = q.submit("c", "jc");
        let (alo, ac) = ja.grant();
        let (blo, bc) = jb.grant();
        let (clo, cc) = jc.grant();
        assert_eq!(ac + bc + cc, 100, "active pools tile the cluster");
        assert_eq!(alo, 0);
        assert_eq!(blo, ac);
        assert_eq!(clo, ac + bc);
        assert_eq!(ac, 50);
        assert_eq!(bc, 33);
        assert_eq!(cc, 17);
    }
}
