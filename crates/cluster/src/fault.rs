//! Deterministic fault injection and Spark-style recovery scheduling.
//!
//! The paper's fault-tolerance story (§II.B) is lineage: lost data is
//! recomputed, not replicated. To *exercise* that story the cluster needs
//! failures, and to keep experiments bit-for-bit reproducible the failures
//! must be part of the virtual timeline, not the host's. A [`FaultPlan`] is
//! a seeded description of everything that goes wrong in a run:
//!
//! * **task crashes** — attempt `a` of partition `p` in stage `s` crashes
//!   iff a hash of `(seed, s, p, a)` falls under the crash probability, so
//!   the same plan always kills the same attempts;
//! * **node losses** — a node dies at a fixed virtual instant; running
//!   attempts fail at the instant of death, and the node takes no further
//!   tasks (engines additionally invalidate its cached partitions and
//!   shuffle map outputs);
//! * **slow nodes** — a degradation factor stretches every task the node
//!   runs, modelling the heterogeneous/degraded workers of Aouad et al.;
//! * **transient fetch failures** — a shuffle fetch or HDFS/checkpoint block
//!   read fails *transiently* (network hiccup, busy serving node) and is
//!   retried in place with deterministic exponential backoff + seeded
//!   jitter; only after [`FaultPlan::fetch_retries`] retries exhaust does
//!   the failure escalate to real data-loss recovery (map-output
//!   resubmission / remote-replica reads).
//!
//! Node losses are *detected*, not oracle-known: nodes emit virtual-time
//! heartbeats every [`FaultPlan::heartbeat_interval`], and the driver only
//! declares a node lost once [`FaultPlan::heartbeat_timeout`] elapses past
//! its last beat (with a zero timeout — the default — detection is
//! instantaneous, preserving the PR 2 behaviour bit-for-bit).
//!
//! The [`FaultController`] evaluates a plan while scheduling a stage: failed
//! attempts are retried after a resubmission delay (up to
//! [`FaultPlan::max_task_failures`], Spark's default 4), nodes accumulating
//! failures are blacklisted (stage-scoped by default; across stages with an
//! expiry when [`FaultPlan::blacklist_expiry`] is set), and — when
//! speculative execution is enabled — straggler attempts on slow nodes get
//! a duplicate launched on a healthy node, first finisher wins. Real data
//! processing still happens exactly once on the host pool; failures exist
//! purely on the virtual timeline, so mining results stay byte-identical
//! while virtual time grows.

use crate::hash::{fx_hash64, FxHashMap, FxHashSet};
use crate::json::JsonValue;
use crate::sched::{
    DetailedSchedule, HeartbeatMonitor, ScheduleOutcome, TaskPlacement, TaskSpec, VirtualScheduler,
};
use crate::spec::NodeId;
use crate::sync::Mutex;
use crate::time::{SimDuration, SimInstant};
use std::sync::Arc;

/// Spark's default `spark.task.maxFailures`.
pub const DEFAULT_MAX_TASK_FAILURES: u32 = 4;
/// Delay before a failed task is resubmitted (scheduler round-trip).
pub const DEFAULT_RESUBMIT_DELAY: f64 = 0.2;
/// A surviving attempt this many times slower than the stage median gets a
/// speculative copy (Spark's `spark.speculation.multiplier`).
pub const DEFAULT_SPECULATION_MULTIPLIER: f64 = 1.5;
/// Crash failures on one node before it stops receiving tasks.
pub const DEFAULT_BLACKLIST_AFTER: u32 = 3;
/// In-place retries of a transient fetch before escalating to data-loss
/// recovery (Spark's `spark.shuffle.io.maxRetries`).
pub const DEFAULT_FETCH_RETRIES: u32 = 3;
/// Base of the exponential retry backoff, seconds (Spark's
/// `spark.shuffle.io.retryWait` is 5s; scaled to this simulator's stages).
pub const DEFAULT_FETCH_BACKOFF_BASE: f64 = 0.05;
/// Virtual seconds between node heartbeats.
pub const DEFAULT_HEARTBEAT_INTERVAL: f64 = 0.5;

/// Which storage tier a silent corruption hits. Each tier checksums its
/// blocks at write time and verifies at read time; the tier determines both
/// the hash domain of the seeded corruption roll and the repair ladder the
/// reader walks on a mismatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntegrityTier {
    /// Shuffle map output buckets ([`crate::SimCluster`]-side registry).
    Shuffle,
    /// Cached / spilled RDD partitions.
    Cache,
    /// SimHdfs file blocks and checkpoint replicas.
    Hdfs,
}

impl IntegrityTier {
    /// Hash-domain tag separating the tiers' corruption rolls.
    fn tag(self) -> u64 {
        match self {
            IntegrityTier::Shuffle => 0xbadd,
            IntegrityTier::Cache => 0xbadc,
            IntegrityTier::Hdfs => 0xbadf,
        }
    }

    /// Stable lowercase name (JSON encoding).
    pub fn name(self) -> &'static str {
        match self {
            IntegrityTier::Shuffle => "shuffle",
            IntegrityTier::Cache => "cache",
            IntegrityTier::Hdfs => "hdfs",
        }
    }

    /// Parse the JSON encoding produced by [`IntegrityTier::name`].
    pub fn parse(s: &str) -> Option<IntegrityTier> {
        match s {
            "shuffle" => Some(IntegrityTier::Shuffle),
            "cache" => Some(IntegrityTier::Cache),
            "hdfs" => Some(IntegrityTier::Hdfs),
            _ => None,
        }
    }
}

/// A seeded, fully deterministic description of the faults injected into one
/// run. Built with the `with_*`/`crash_*`/`lose_*` chainable constructors.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for all pseudo-random crash decisions.
    pub seed: u64,
    /// Probability that any given task attempt crashes partway through.
    pub task_crash_prob: f64,
    /// Attempts a task may burn on crashes before the stage aborts.
    pub max_task_failures: u32,
    /// Virtual delay between a failure and the retry launch.
    pub resubmit_delay: SimDuration,
    /// Nodes that die, with their virtual time of death.
    pub node_losses: Vec<(NodeId, SimInstant)>,
    /// Nodes running slow: every task duration is multiplied by the factor.
    pub slow_nodes: Vec<(NodeId, f64)>,
    /// Launch duplicate attempts for stragglers on slow nodes.
    pub speculation: bool,
    /// Straggler threshold relative to the stage's median task duration.
    pub speculation_multiplier: f64,
    /// Crash failures on one node before it is blacklisted.
    pub blacklist_after: u32,
    /// Probability that one shuffle fetch fails transiently (per reduce
    /// partition, retried in place with backoff).
    pub fetch_failure_prob: f64,
    /// Probability that one HDFS / checkpoint block read fails transiently.
    pub hdfs_failure_prob: f64,
    /// In-place retries of a transient fetch before escalation.
    pub fetch_retries: u32,
    /// Base of the exponential retry backoff (attempt `a` waits
    /// `base * 2^a * (1 + jitter)` with seeded jitter in `[0, 1)`).
    pub fetch_backoff_base: SimDuration,
    /// Virtual interval between node heartbeats.
    pub heartbeat_interval: SimDuration,
    /// How long past a node's last heartbeat the driver waits before
    /// declaring it lost. Zero (the default) means instant, oracle-style
    /// detection — exactly the pre-heartbeat behaviour.
    pub heartbeat_timeout: SimDuration,
    /// How long a blacklist entry outlives the failures that earned it.
    /// Zero (the default) keeps blacklisting stage-scoped; a nonzero expiry
    /// carries entries across stages and lets healed nodes return.
    pub blacklist_expiry: SimDuration,
    /// Engine hint: checkpoint the iterated RDD every this many passes
    /// (0 = never). Engines read it when their own config does not set an
    /// interval, so a saved chaos plan can turn checkpointing on by itself.
    pub checkpoint_interval: usize,
    /// Probability that one shuffle map-output bucket rots silently (rolled
    /// per (shuffle, reduce partition) at read time, seed-deterministic).
    pub shuffle_corruption_prob: f64,
    /// Probability that one cached / spilled partition rots silently.
    pub cache_corruption_prob: f64,
    /// Probability that one HDFS / checkpoint block *replica* rots silently
    /// (rolled per replica, so surviving copies can repair the read).
    pub hdfs_corruption_prob: f64,
    /// Deterministic targeted corruptions: `(tier, id, partition, copies)`
    /// poisons the first `copies` replicas of that exact block
    /// (`u32::MAX` = all replicas, leaving no clean copy at that site).
    pub targeted_corruptions: Vec<(IntegrityTier, u64, usize, u32)>,
    /// Probability that one execution-memory acquisition is denied as if
    /// the executor ran out of memory (rolled per acquisition,
    /// seed-deterministic). Degradable sites spill and survive; the rest
    /// kill the attempt for a retry at a doubled memory slice.
    pub oom_prob: f64,
    /// Pretend every node has this many bytes of memory instead of the
    /// cluster spec's `memory_per_node`. Arms the memory governor even
    /// without `oom_prob`, so tight budgets exercise the real (non-injected)
    /// pressure ladder.
    pub mem_budget_override: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::seeded(0)
    }
}

impl FaultPlan {
    /// An inert plan (no faults) carrying `seed` for later crash settings.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            task_crash_prob: 0.0,
            max_task_failures: DEFAULT_MAX_TASK_FAILURES,
            resubmit_delay: SimDuration::from_secs(DEFAULT_RESUBMIT_DELAY),
            node_losses: Vec::new(),
            slow_nodes: Vec::new(),
            speculation: false,
            speculation_multiplier: DEFAULT_SPECULATION_MULTIPLIER,
            blacklist_after: DEFAULT_BLACKLIST_AFTER,
            fetch_failure_prob: 0.0,
            hdfs_failure_prob: 0.0,
            fetch_retries: DEFAULT_FETCH_RETRIES,
            fetch_backoff_base: SimDuration::from_secs(DEFAULT_FETCH_BACKOFF_BASE),
            heartbeat_interval: SimDuration::from_secs(DEFAULT_HEARTBEAT_INTERVAL),
            heartbeat_timeout: SimDuration::ZERO,
            blacklist_expiry: SimDuration::ZERO,
            checkpoint_interval: 0,
            shuffle_corruption_prob: 0.0,
            cache_corruption_prob: 0.0,
            hdfs_corruption_prob: 0.0,
            targeted_corruptions: Vec::new(),
            oom_prob: 0.0,
            mem_budget_override: None,
        }
    }

    /// Crash each task attempt with probability `prob` (seed-deterministic).
    pub fn crash_tasks(mut self, prob: f64) -> Self {
        self.task_crash_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Kill `node` at virtual instant `at`.
    pub fn lose_node_at(mut self, node: NodeId, at: SimInstant) -> Self {
        self.node_losses.push((node, at));
        self
    }

    /// Degrade `node`: its tasks run `factor`× slower.
    pub fn slow_node(mut self, node: NodeId, factor: f64) -> Self {
        self.slow_nodes.push((node, factor.max(1.0)));
        self
    }

    /// Enable speculative execution for straggler attempts.
    pub fn with_speculation(mut self) -> Self {
        self.speculation = true;
        self
    }

    /// Override the per-task retry budget.
    pub fn with_max_task_failures(mut self, n: u32) -> Self {
        self.max_task_failures = n.max(1);
        self
    }

    /// Override the resubmission delay.
    pub fn with_resubmit_delay(mut self, d: SimDuration) -> Self {
        self.resubmit_delay = d;
        self
    }

    /// Override the blacklisting threshold.
    pub fn with_blacklist_after(mut self, n: u32) -> Self {
        self.blacklist_after = n.max(1);
        self
    }

    /// Fail each shuffle fetch transiently with probability `prob`.
    pub fn flaky_fetches(mut self, prob: f64) -> Self {
        self.fetch_failure_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Fail each HDFS / checkpoint block read transiently with probability
    /// `prob`.
    pub fn flaky_hdfs(mut self, prob: f64) -> Self {
        self.hdfs_failure_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Override the in-place retry budget for transient fetches.
    pub fn with_fetch_retries(mut self, n: u32) -> Self {
        self.fetch_retries = n;
        self
    }

    /// Override the exponential-backoff base.
    pub fn with_fetch_backoff_base(mut self, d: SimDuration) -> Self {
        self.fetch_backoff_base = d;
        self
    }

    /// Detect node losses by missed heartbeats: beats every `interval`,
    /// declared lost `timeout` past the last beat.
    pub fn with_heartbeat(mut self, interval: SimDuration, timeout: SimDuration) -> Self {
        self.heartbeat_interval = interval.max(SimDuration::from_secs(1e-6));
        self.heartbeat_timeout = timeout;
        self
    }

    /// Carry blacklist entries across stages, expiring after `d`.
    pub fn with_blacklist_expiry(mut self, d: SimDuration) -> Self {
        self.blacklist_expiry = d;
        self
    }

    /// Suggest checkpointing the iterated RDD every `passes` passes to
    /// engines whose own config leaves the interval unset.
    pub fn with_checkpoint_interval(mut self, passes: usize) -> Self {
        self.checkpoint_interval = passes;
        self
    }

    /// Rot shuffle map-output buckets with probability `prob` per
    /// (shuffle, reduce partition), seed-deterministically.
    pub fn corrupt_shuffle(mut self, prob: f64) -> Self {
        self.shuffle_corruption_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Rot cached / spilled partitions with probability `prob`.
    pub fn corrupt_cache(mut self, prob: f64) -> Self {
        self.cache_corruption_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Rot HDFS / checkpoint block replicas with probability `prob` per
    /// replica.
    pub fn corrupt_hdfs(mut self, prob: f64) -> Self {
        self.hdfs_corruption_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Poison exactly one copy (the first replica) of the identified block.
    pub fn corrupt_block(mut self, tier: IntegrityTier, id: u64, partition: usize) -> Self {
        self.targeted_corruptions.push((tier, id, partition, 1));
        self
    }

    /// Poison *every* replica of the identified block, leaving no clean
    /// copy at that site — the reader must fall back to lineage or fail.
    pub fn corrupt_all_replicas(mut self, tier: IntegrityTier, id: u64, partition: usize) -> Self {
        self.targeted_corruptions
            .push((tier, id, partition, u32::MAX));
        self
    }

    /// Deny each execution-memory acquisition with probability `prob`,
    /// seed-deterministically.
    pub fn inject_oom(mut self, prob: f64) -> Self {
        self.oom_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Cap every node's memory at `bytes` for this run (arms the governor).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget_override = Some(bytes);
        self
    }

    /// True when the plan constrains or disturbs execution memory: the
    /// memory governor arms itself (and starts charging and counting) only
    /// then, keeping unconstrained timelines byte-identical.
    pub fn memory_active(&self) -> bool {
        self.oom_prob > 0.0 || self.mem_budget_override.is_some()
    }

    /// Seed-deterministic OOM decision for one execution-memory acquisition
    /// attempt. `roll` indexes the acquisition within its task, `site` tags
    /// the kind of structure being built, and `attempt` is the retry index —
    /// each retry runs at a doubled memory slice, so the injected
    /// probability halves per attempt. Pure: the same plan always denies
    /// the same acquisitions.
    pub fn oom_roll(
        &self,
        stage_key: u64,
        partition: usize,
        roll: u64,
        site: u64,
        attempt: u32,
    ) -> bool {
        crate::memgov::oom_roll_hash(
            self.seed,
            self.oom_prob,
            stage_key,
            partition,
            roll,
            site,
            attempt,
        )
    }

    /// True when the plan can inject silent corruption anywhere. Readers
    /// use this to skip checksum verification (and its virtual-time charge)
    /// entirely on clean runs, keeping fault-free timelines byte-identical.
    pub fn integrity_active(&self) -> bool {
        self.shuffle_corruption_prob > 0.0
            || self.cache_corruption_prob > 0.0
            || self.hdfs_corruption_prob > 0.0
            || !self.targeted_corruptions.is_empty()
    }

    /// Seed-deterministic corruption decision for one stored copy of one
    /// block: `copy` indexes the replica (0 for single-copy tiers). Pure —
    /// the same plan always rots the same copies; see
    /// [`FaultController::take_corruption`] for the repair-aware wrapper.
    pub fn corruption_roll(
        &self,
        tier: IntegrityTier,
        id: u64,
        partition: usize,
        copy: u32,
    ) -> bool {
        for (t, tid, part, copies) in &self.targeted_corruptions {
            if *t == tier && *tid == id && *part == partition && copy < *copies {
                return true;
            }
        }
        let prob = match tier {
            IntegrityTier::Shuffle => self.shuffle_corruption_prob,
            IntegrityTier::Cache => self.cache_corruption_prob,
            IntegrityTier::Hdfs => self.hdfs_corruption_prob,
        };
        if prob <= 0.0 {
            return false;
        }
        let key = (self.seed, tier.tag(), id, partition as u64, copy as u64);
        let roll = (fx_hash64(&key) >> 11) as f64 / (1u64 << 53) as f64;
        roll < prob
    }

    /// True when the plan can actually disturb a run.
    pub fn has_faults(&self) -> bool {
        self.task_crash_prob > 0.0
            || !self.node_losses.is_empty()
            || self.slow_nodes.iter().any(|(_, f)| *f > 1.0)
            || self.fetch_failure_prob > 0.0
            || self.hdfs_failure_prob > 0.0
            || self.integrity_active()
            || self.memory_active()
    }

    /// The virtual instant at which the driver *detects* a death at `death`:
    /// the heartbeat timeout past the victim's last beat, never earlier than
    /// the death itself. With a zero timeout this is `death` exactly.
    pub fn detection_instant(&self, death: SimInstant) -> SimInstant {
        if self.heartbeat_timeout == SimDuration::ZERO {
            return death;
        }
        HeartbeatMonitor::new(self.heartbeat_interval, self.heartbeat_timeout)
            .detection_instant(death)
    }

    /// Walk the deterministic retry ladder for one transient-failure site
    /// (shuffle fetch or HDFS block read), identified by `(kind, id,
    /// partition)`. Every decision hashes the plan seed, so the same plan
    /// always produces the same retries, backoff, and escalation.
    pub fn transient_outcome(
        &self,
        kind: TransientKind,
        id: u64,
        partition: usize,
    ) -> TransientOutcome {
        let prob = match kind {
            TransientKind::ShuffleFetch => self.fetch_failure_prob,
            TransientKind::HdfsRead => self.hdfs_failure_prob,
        };
        let mut out = TransientOutcome::default();
        if prob <= 0.0 {
            return out;
        }
        let tag: u64 = match kind {
            TransientKind::ShuffleFetch => 0x7fe7,
            TransientKind::HdfsRead => 0xdf5d,
        };
        for attempt in 0..=self.fetch_retries {
            let key = (self.seed, tag, id, partition as u64, attempt as u64);
            let roll = (fx_hash64(&key) >> 11) as f64 / (1u64 << 53) as f64;
            if roll >= prob {
                return out; // this attempt got through
            }
            if attempt == self.fetch_retries {
                out.escalated = true;
                return out;
            }
            out.retries += 1;
            let jitter = (fx_hash64(&(key, 0xb0ffu64)) >> 11) as f64 / (1u64 << 53) as f64;
            let backoff = self.fetch_backoff_base.as_secs()
                * (1u64 << attempt.min(20)) as f64
                * (1.0 + jitter);
            out.backoff_micros += (backoff * 1e6).round() as u64;
        }
        out
    }

    /// Serialize the plan through the hand-rolled JSON layer. Round-trips
    /// exactly through [`FaultPlan::from_json`] (float formatting is
    /// shortest-round-trip).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seed", self.seed.into()),
            ("task_crash_prob", self.task_crash_prob.into()),
            (
                "max_task_failures",
                u64::from(self.max_task_failures).into(),
            ),
            ("resubmit_delay", self.resubmit_delay.as_secs().into()),
            (
                "node_losses",
                JsonValue::Array(
                    self.node_losses
                        .iter()
                        .map(|(n, t)| {
                            JsonValue::Array(vec![
                                u64::from(n.0).into(),
                                t.since(SimInstant::EPOCH).as_secs().into(),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "slow_nodes",
                JsonValue::Array(
                    self.slow_nodes
                        .iter()
                        .map(|(n, f)| JsonValue::Array(vec![u64::from(n.0).into(), (*f).into()]))
                        .collect(),
                ),
            ),
            ("speculation", JsonValue::Bool(self.speculation)),
            ("speculation_multiplier", self.speculation_multiplier.into()),
            ("blacklist_after", u64::from(self.blacklist_after).into()),
            ("fetch_failure_prob", self.fetch_failure_prob.into()),
            ("hdfs_failure_prob", self.hdfs_failure_prob.into()),
            ("fetch_retries", u64::from(self.fetch_retries).into()),
            (
                "fetch_backoff_base",
                self.fetch_backoff_base.as_secs().into(),
            ),
            (
                "heartbeat_interval",
                self.heartbeat_interval.as_secs().into(),
            ),
            ("heartbeat_timeout", self.heartbeat_timeout.as_secs().into()),
            ("blacklist_expiry", self.blacklist_expiry.as_secs().into()),
            ("checkpoint_interval", self.checkpoint_interval.into()),
            (
                "shuffle_corruption_prob",
                self.shuffle_corruption_prob.into(),
            ),
            ("cache_corruption_prob", self.cache_corruption_prob.into()),
            ("hdfs_corruption_prob", self.hdfs_corruption_prob.into()),
            (
                "targeted_corruptions",
                JsonValue::Array(
                    self.targeted_corruptions
                        .iter()
                        .map(|(tier, id, part, copies)| {
                            JsonValue::Array(vec![
                                tier.name().into(),
                                (*id).into(),
                                (*part).into(),
                                u64::from(*copies).into(),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("oom_prob", self.oom_prob.into()),
            (
                "mem_budget_override",
                match self.mem_budget_override {
                    Some(b) => b.into(),
                    None => JsonValue::Null,
                },
            ),
        ])
    }

    /// Parse a plan from the JSON produced by [`FaultPlan::to_json`]. Every
    /// field is optional and falls back to [`FaultPlan::seeded`] defaults,
    /// so hand-written plans can stay minimal — but unknown fields are
    /// rejected by name, so a typo (`fetch_retrys`) fails loudly instead of
    /// silently running with the default.
    pub fn from_json(v: &JsonValue) -> Result<FaultPlan, String> {
        const KNOWN_FIELDS: &[&str] = &[
            "seed",
            "task_crash_prob",
            "max_task_failures",
            "resubmit_delay",
            "node_losses",
            "slow_nodes",
            "speculation",
            "speculation_multiplier",
            "blacklist_after",
            "fetch_failure_prob",
            "hdfs_failure_prob",
            "fetch_retries",
            "fetch_backoff_base",
            "heartbeat_interval",
            "heartbeat_timeout",
            "blacklist_expiry",
            "checkpoint_interval",
            "shuffle_corruption_prob",
            "cache_corruption_prob",
            "hdfs_corruption_prob",
            "targeted_corruptions",
            "oom_prob",
            "mem_budget_override",
        ];
        let obj = match v {
            JsonValue::Object(map) => {
                for key in map.keys() {
                    if !KNOWN_FIELDS.contains(&key.as_str()) {
                        return Err(format!(
                            "unknown fault plan field `{key}` (known fields: {})",
                            KNOWN_FIELDS.join(", ")
                        ));
                    }
                }
                v
            }
            other => return Err(format!("fault plan must be a JSON object, got {other}")),
        };
        let num = |name: &str| obj.get(name).and_then(JsonValue::as_f64);
        let seed = num("seed").unwrap_or(0.0) as u64;
        let mut plan = FaultPlan::seeded(seed);
        if let Some(p) = num("task_crash_prob") {
            plan.task_crash_prob = p.clamp(0.0, 1.0);
        }
        if let Some(n) = num("max_task_failures") {
            plan.max_task_failures = (n as u32).max(1);
        }
        if let Some(s) = num("resubmit_delay") {
            plan.resubmit_delay = SimDuration::from_secs(s);
        }
        if let Some(JsonValue::Array(items)) = obj.get("node_losses") {
            for item in items {
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("node_losses entry must be [node, secs]: {item}"))?;
                let node = pair[0]
                    .as_f64()
                    .ok_or_else(|| format!("bad node id: {}", pair[0]))?;
                let at = pair[1]
                    .as_f64()
                    .ok_or_else(|| format!("bad loss instant: {}", pair[1]))?;
                plan.node_losses.push((
                    NodeId(node as u32),
                    SimInstant::EPOCH + SimDuration::from_secs(at),
                ));
            }
        }
        if let Some(JsonValue::Array(items)) = obj.get("slow_nodes") {
            for item in items {
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("slow_nodes entry must be [node, factor]: {item}"))?;
                let node = pair[0]
                    .as_f64()
                    .ok_or_else(|| format!("bad node id: {}", pair[0]))?;
                let factor = pair[1]
                    .as_f64()
                    .ok_or_else(|| format!("bad slow factor: {}", pair[1]))?;
                plan.slow_nodes.push((NodeId(node as u32), factor.max(1.0)));
            }
        }
        if let Some(JsonValue::Bool(b)) = obj.get("speculation") {
            plan.speculation = *b;
        }
        if let Some(m) = num("speculation_multiplier") {
            plan.speculation_multiplier = m;
        }
        if let Some(n) = num("blacklist_after") {
            plan.blacklist_after = (n as u32).max(1);
        }
        if let Some(p) = num("fetch_failure_prob") {
            plan.fetch_failure_prob = p.clamp(0.0, 1.0);
        }
        if let Some(p) = num("hdfs_failure_prob") {
            plan.hdfs_failure_prob = p.clamp(0.0, 1.0);
        }
        if let Some(n) = num("fetch_retries") {
            plan.fetch_retries = n as u32;
        }
        if let Some(s) = num("fetch_backoff_base") {
            plan.fetch_backoff_base = SimDuration::from_secs(s);
        }
        if let Some(s) = num("heartbeat_interval") {
            plan.heartbeat_interval = SimDuration::from_secs(s.max(1e-6));
        }
        if let Some(s) = num("heartbeat_timeout") {
            plan.heartbeat_timeout = SimDuration::from_secs(s);
        }
        if let Some(s) = num("blacklist_expiry") {
            plan.blacklist_expiry = SimDuration::from_secs(s);
        }
        if let Some(n) = num("checkpoint_interval") {
            plan.checkpoint_interval = n as usize;
        }
        if let Some(p) = num("shuffle_corruption_prob") {
            plan.shuffle_corruption_prob = p.clamp(0.0, 1.0);
        }
        if let Some(p) = num("cache_corruption_prob") {
            plan.cache_corruption_prob = p.clamp(0.0, 1.0);
        }
        if let Some(p) = num("hdfs_corruption_prob") {
            plan.hdfs_corruption_prob = p.clamp(0.0, 1.0);
        }
        if let Some(p) = num("oom_prob") {
            plan.oom_prob = p.clamp(0.0, 1.0);
        }
        if let Some(b) = num("mem_budget_override") {
            plan.mem_budget_override = Some(b as u64);
        }
        if let Some(JsonValue::Array(items)) = obj.get("targeted_corruptions") {
            for item in items {
                let entry = item.as_array().filter(|e| e.len() == 4).ok_or_else(|| {
                    format!(
                        "targeted_corruptions entry must be [tier, id, partition, copies]: {item}"
                    )
                })?;
                let tier = entry[0]
                    .as_str()
                    .and_then(IntegrityTier::parse)
                    .ok_or_else(|| {
                        format!(
                            "bad corruption tier {} (expected \"shuffle\", \"cache\" or \"hdfs\")",
                            entry[0]
                        )
                    })?;
                let id = entry[1]
                    .as_f64()
                    .ok_or_else(|| format!("bad corruption id: {}", entry[1]))?;
                let part = entry[2]
                    .as_f64()
                    .ok_or_else(|| format!("bad corruption partition: {}", entry[2]))?;
                let copies = entry[3]
                    .as_f64()
                    .ok_or_else(|| format!("bad corruption copy count: {}", entry[3]))?;
                plan.targeted_corruptions.push((
                    tier,
                    id as u64,
                    part as usize,
                    (copies as u64).min(u64::from(u32::MAX)) as u32,
                ));
            }
        }
        Ok(plan)
    }

    /// Deterministic crash decision for one attempt: `Some(fraction)` means
    /// the attempt crashes after running that fraction of its duration.
    fn crash_point(&self, stage_seed: u64, partition: usize, attempt: u32) -> Option<f64> {
        if self.task_crash_prob <= 0.0 {
            return None;
        }
        let key = (self.seed, stage_seed, partition as u64, attempt as u64);
        let roll = (fx_hash64(&key) >> 11) as f64 / (1u64 << 53) as f64;
        if roll >= self.task_crash_prob {
            return None;
        }
        let frac_bits = fx_hash64(&(key, 0x5eedu64));
        Some(0.1 + 0.8 * ((frac_bits >> 11) as f64 / (1u64 << 53) as f64))
    }

    fn slow_factor(&self, node: NodeId) -> f64 {
        self.slow_nodes
            .iter()
            .find(|(n, _)| *n == node)
            .map_or(1.0, |(_, f)| f.max(1.0))
    }
}

/// Which kind of remote read a transient failure hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransientKind {
    /// A reduce task fetching shuffle map output.
    ShuffleFetch,
    /// A task reading an HDFS or checkpoint block.
    HdfsRead,
}

/// The deterministic result of one transient-failure retry ladder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransientOutcome {
    /// Failed attempts that were retried in place.
    pub retries: u64,
    /// Total backoff waited between attempts, in virtual microseconds.
    pub backoff_micros: u64,
    /// All retries failed: the caller must escalate to data-loss recovery
    /// (map-output resubmission, remote-replica read).
    pub escalated: bool,
}

impl TransientOutcome {
    /// True when the ladder did anything at all.
    pub fn any(&self) -> bool {
        *self != TransientOutcome::default()
    }
}

/// Silent-corruption bookkeeping: how many blocks rotted, how many rotted
/// blocks a reader caught (detection is at read time, so the two are equal
/// whenever every rotten block is actually read — rot that is never read is
/// unobservable by construction), and which rung of the repair ladder fixed
/// each one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Stored copies whose checksum was poisoned by the plan and observed
    /// by a reader.
    pub corruptions_injected: u64,
    /// Checksum mismatches caught at read time (always == injected: every
    /// verified read of a rotten copy detects it).
    pub corruptions_detected: u64,
    /// Detected corruptions repaired from *some* clean source.
    pub corruptions_repaired: u64,
    /// Repairs served by re-fetching a surviving replica (HDFS blocks,
    /// checkpoint copies).
    pub repaired_via_replica: u64,
    /// Repairs served by evicting the poisoned copy and recomputing it
    /// through the lineage inside the running task.
    pub repaired_via_recompute: u64,
    /// Repairs served by resubmitting the producing map stage (shuffle
    /// buckets have no replica — the map task is re-run).
    pub repaired_via_resubmit: u64,
}

impl IntegrityCounters {
    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &IntegrityCounters) {
        self.corruptions_injected += other.corruptions_injected;
        self.corruptions_detected += other.corruptions_detected;
        self.corruptions_repaired += other.corruptions_repaired;
        self.repaired_via_replica += other.repaired_via_replica;
        self.repaired_via_recompute += other.repaired_via_recompute;
        self.repaired_via_resubmit += other.repaired_via_resubmit;
    }

    /// True when any counter is nonzero.
    pub fn any(&self) -> bool {
        *self != IntegrityCounters::default()
    }
}

/// Execution-memory governor bookkeeping: how hard the budget was pushed
/// and which rung of the degradation ladder absorbed the pressure. An OOM
/// event (seeded injection or a real over-budget acquisition) is either
/// survived by degradation (a forced spill) or kills the task attempt, so
/// `oom_injected == oom_killed + oom_survived_by_degradation` always holds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryCounters {
    /// Highest execution memory any single task held at once, bytes
    /// (merged with `max`, not summed — it is compared to the budget).
    pub peak_execution_bytes: u64,
    /// Buffers spilled to local disk under memory pressure.
    pub spills: u64,
    /// Bytes those spills moved through local disk.
    pub spill_bytes: u64,
    /// Pass-granularity matcher step-downs (bitmap → trie → hash-tree)
    /// taken because the preferred structure's footprint estimate did not
    /// fit the budget.
    pub degradations: u64,
    /// OOM events raised by the plan: seeded `oom_prob` denials plus real
    /// over-budget acquisitions under `mem_budget_override`.
    pub oom_injected: u64,
    /// OOM events that killed a task attempt (retried at a doubled slice).
    pub oom_killed: u64,
    /// OOM events a degradable site absorbed by spilling instead of dying.
    pub oom_survived_by_degradation: u64,
}

impl MemoryCounters {
    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &MemoryCounters) {
        self.peak_execution_bytes = self.peak_execution_bytes.max(other.peak_execution_bytes);
        self.spills += other.spills;
        self.spill_bytes += other.spill_bytes;
        self.degradations += other.degradations;
        self.oom_injected += other.oom_injected;
        self.oom_killed += other.oom_killed;
        self.oom_survived_by_degradation += other.oom_survived_by_degradation;
    }

    /// True when any counter is nonzero.
    pub fn any(&self) -> bool {
        *self != MemoryCounters::default()
    }
}

/// Failure/retry/speculation counters. Attached to every recorded stage and
/// aggregated by the metrics sink; the stage report prints them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Task attempts that crashed or died with their node.
    pub task_failures: u64,
    /// Attempts re-launched after a failure.
    pub task_retries: u64,
    /// Nodes lost.
    pub nodes_lost: u64,
    /// Nodes blacklisted after repeated failures.
    pub nodes_blacklisted: u64,
    /// Speculative duplicate attempts launched.
    pub speculative_launched: u64,
    /// Speculative attempts that finished before their original.
    pub speculative_wins: u64,
    /// Partitions recomputed through lineage / HDFS re-reads after data
    /// loss (cached partitions, shuffle map outputs, MR map re-executions).
    pub recomputed_partitions: u64,
    /// Shuffle map outputs found missing by a consumer.
    pub fetch_failures: u64,
    /// Broadcast re-distributions after an executor holding blocks died.
    pub broadcast_refetches: u64,
    /// Transient fetch failures retried in place (shuffle + HDFS).
    pub fetch_retries: u64,
    /// Virtual microseconds spent in retry backoff.
    pub backoff_micros: u64,
    /// Partition blocks written to checkpoint storage.
    pub checkpoint_writes: u64,
    /// Partition reads served from checkpoint storage instead of lineage
    /// replay.
    pub checkpoint_reads: u64,
    /// Deepest lineage chain any lost partition was recomputed through
    /// (merged with `max`, not summed — it bounds recovery work).
    pub max_replay_depth: u64,
    /// Silent-corruption detections and repairs (checksummed tiers).
    pub integrity: IntegrityCounters,
    /// Execution-memory pressure, spills and OOM outcomes (the governor).
    pub mem: MemoryCounters,
}

impl RecoveryCounters {
    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.task_failures += other.task_failures;
        self.task_retries += other.task_retries;
        self.nodes_lost += other.nodes_lost;
        self.nodes_blacklisted += other.nodes_blacklisted;
        self.speculative_launched += other.speculative_launched;
        self.speculative_wins += other.speculative_wins;
        self.recomputed_partitions += other.recomputed_partitions;
        self.fetch_failures += other.fetch_failures;
        self.broadcast_refetches += other.broadcast_refetches;
        self.fetch_retries += other.fetch_retries;
        self.backoff_micros += other.backoff_micros;
        self.checkpoint_writes += other.checkpoint_writes;
        self.checkpoint_reads += other.checkpoint_reads;
        self.max_replay_depth = self.max_replay_depth.max(other.max_replay_depth);
        self.integrity.merge(&other.integrity);
        self.mem.merge(&other.mem);
    }

    /// True when any counter is nonzero.
    pub fn any(&self) -> bool {
        *self != RecoveryCounters::default()
    }
}

/// Why a fault-aware schedule could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// One task exhausted its retry budget.
    TaskAborted {
        /// Partition whose task kept failing.
        partition: usize,
        /// Crash failures accumulated.
        failures: u32,
        /// The budget that was exceeded.
        max_task_failures: u32,
    },
    /// No node is left alive (and un-blacklisted) to run a task.
    NoHealthyNodes {
        /// Partition that could not be placed.
        partition: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::TaskAborted {
                partition,
                failures,
                max_task_failures,
            } => write!(
                f,
                "task for partition {partition} failed {failures} times, exceeding \
                 max_task_failures = {max_task_failures}; aborting the stage \
                 (raise FaultPlan::with_max_task_failures or lower the crash probability)"
            ),
            FaultError::NoHealthyNodes { partition } => write!(
                f,
                "no healthy node left to run partition {partition}: every node is \
                 dead or blacklisted"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// A fault-aware schedule: the winning placement per task plus what it took
/// to get there.
#[derive(Clone, Debug)]
pub struct FaultySchedule {
    /// Final (winning) placements, in input task order.
    pub schedule: DetailedSchedule,
    /// Failures, retries and speculation accumulated by this stage.
    pub recovery: RecoveryCounters,
}

impl FaultySchedule {
    /// Virtual time past the last successful task end: failed attempts that
    /// outlived every success, plus the healthy-plan makespan floor. The
    /// metrics layer derives stage duration from the task spans alone, so
    /// callers charge this as the stage's trailing time.
    pub fn trailing_pad(&self) -> SimDuration {
        let placed = self
            .schedule
            .placements
            .iter()
            .map(|p| p.start + p.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        self.schedule.outcome.makespan - placed
    }
}

#[derive(Default)]
struct FaultInner {
    plan: FaultPlan,
    enabled: bool,
    /// All node losses (plan plus manual kills), by virtual instant.
    losses: Vec<(NodeId, SimInstant)>,
    /// Nodes whose data-loss side effects the engine already applied.
    applied: FxHashSet<u32>,
    /// Cross-stage blacklist entries (node → expiry instant). Only used
    /// when the plan sets a nonzero [`FaultPlan::blacklist_expiry`].
    blacklist: FxHashMap<u32, SimInstant>,
    /// Corrupted copies already detected and repaired (scrub-on-read):
    /// `(tier tag, id, partition, copy)`. A healed copy never rots again —
    /// the rewrite stored fresh, clean bytes.
    healed: FxHashSet<(u64, u64, u64, u64)>,
    stage_counter: u64,
    /// Cluster-owned blacklist shared across concurrent jobs, plus this
    /// cluster's job id in the owning queue. `None` for solo clusters.
    shared: Option<(crate::jobs::SharedBlacklist, crate::jobs::JobId)>,
    /// Foreign shared-blacklist entries consulted during placement since
    /// the last [`FaultController::drain_shared_hits`] — the attribution
    /// feed for `sched.blacklist_shared_hits`.
    shared_hits: u64,
}

/// Shared handle evaluating one [`FaultPlan`] over a cluster's lifetime.
/// Lives on the [`crate::SimCluster`]; inert (and free) until a plan is set
/// or a node is killed. Cheap to clone.
#[derive(Clone, Default)]
pub struct FaultController {
    inner: Arc<Mutex<FaultInner>>,
}

impl FaultController {
    /// A controller with no plan (inert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a fault plan. Replaces any previous plan; nodes whose loss
    /// was already applied stay dead.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut g = self.inner.lock();
        let mut losses = plan.node_losses.clone();
        losses.extend(
            g.losses
                .iter()
                .filter(|(n, _)| g.applied.contains(&n.0))
                .copied(),
        );
        g.plan = plan;
        g.losses = losses;
        g.enabled = true;
    }

    /// Copy of the installed plan.
    pub fn plan(&self) -> FaultPlan {
        self.inner.lock().plan.clone()
    }

    /// Whether fault-aware scheduling is on (a plan was set or a node was
    /// killed manually).
    pub fn active(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Wire the cluster-owned shared blacklist in: nodes blacklisted by
    /// this controller's stages are published under `job`, and foreign
    /// entries (published by other jobs) are excluded from placement with
    /// every such consultation counted (never a silent leak).
    pub fn set_shared_blacklist(
        &self,
        shared: crate::jobs::SharedBlacklist,
        job: crate::jobs::JobId,
    ) {
        self.inner.lock().shared = Some((shared, job));
    }

    /// Take the count of foreign shared-blacklist entries consulted during
    /// placement since the last drain (feeds the per-job
    /// `sched.blacklist_shared_hits` counter).
    pub fn drain_shared_hits(&self) -> u64 {
        std::mem::take(&mut self.inner.lock().shared_hits)
    }

    /// Kill a node at virtual instant `at` (manual fault injection). Returns
    /// `false` if the node was already dead. The caller is responsible for
    /// invalidating the node's data (the loss is marked applied).
    pub fn kill_node(&self, node: NodeId, at: SimInstant) -> bool {
        let mut g = self.inner.lock();
        if g.losses.iter().any(|(n, t)| *n == node && *t <= at) {
            return false;
        }
        g.losses.push((node, at));
        g.applied.insert(node.0);
        g.enabled = true;
        true
    }

    /// Nodes whose loss has been *detected* by instant `at` (with a
    /// heartbeat timeout, detection lags the death itself).
    pub fn dead_nodes(&self, at: SimInstant) -> Vec<NodeId> {
        let g = self.inner.lock();
        let mut dead: Vec<NodeId> = g
            .losses
            .iter()
            .filter(|(_, t)| g.plan.detection_instant(*t) <= at)
            .map(|(n, _)| *n)
            .collect();
        dead.sort_by_key(|n| n.0);
        dead.dedup();
        dead
    }

    /// Nodes whose loss is newly detected at `at` and whose data-loss side
    /// effects (cache / shuffle / broadcast invalidation) have not been
    /// applied yet. Marks them applied — each loss is surfaced exactly once.
    pub fn take_new_losses(&self, at: SimInstant) -> Vec<NodeId> {
        let mut g = self.inner.lock();
        let mut fresh: Vec<NodeId> = g
            .losses
            .iter()
            .filter(|(n, t)| g.plan.detection_instant(*t) <= at && !g.applied.contains(&n.0))
            .map(|(n, _)| *n)
            .collect();
        fresh.sort_by_key(|n| n.0);
        fresh.dedup();
        for n in &fresh {
            g.applied.insert(n.0);
        }
        fresh
    }

    /// Whether the installed plan can inject silent corruption: readers use
    /// this to decide whether to charge checksum verification time at all.
    /// `false` on clean runs keeps fault-free timelines byte-identical.
    pub fn integrity_active(&self) -> bool {
        let g = self.inner.lock();
        g.enabled && g.plan.integrity_active()
    }

    /// Whether the identified stored copy is rotten *right now*: the plan's
    /// seeded roll says it rotted and no reader has repaired it yet. Pure
    /// query — use [`FaultController::take_corruption`] at actual read
    /// sites so the detection is counted and the copy heals.
    pub fn corrupted(&self, tier: IntegrityTier, id: u64, partition: usize, copy: u32) -> bool {
        let g = self.inner.lock();
        if !g.enabled || !g.plan.integrity_active() {
            return false;
        }
        g.plan.corruption_roll(tier, id, partition, copy)
            && !g
                .healed
                .contains(&(tier.tag(), id, partition as u64, u64::from(copy)))
    }

    /// Read-site corruption check: returns `true` exactly once per rotten
    /// copy (the verifying read detects the rot; the subsequent repair
    /// rewrites clean bytes, so the copy is marked healed and later reads
    /// verify clean). Callers that see `true` must count the
    /// detection/repair and charge the repair path.
    pub fn take_corruption(
        &self,
        tier: IntegrityTier,
        id: u64,
        partition: usize,
        copy: u32,
    ) -> bool {
        let mut g = self.inner.lock();
        if !g.enabled || !g.plan.integrity_active() {
            return false;
        }
        if !g.plan.corruption_roll(tier, id, partition, copy) {
            return false;
        }
        g.healed
            .insert((tier.tag(), id, partition as u64, u64::from(copy)))
    }

    /// Walk the seeded transient-failure ladder for one fetch site, or an
    /// all-zero outcome when no plan is active. See
    /// [`FaultPlan::transient_outcome`].
    pub fn transient(&self, kind: TransientKind, id: u64, partition: usize) -> TransientOutcome {
        let g = self.inner.lock();
        if !g.enabled {
            return TransientOutcome::default();
        }
        g.plan.transient_outcome(kind, id, partition)
    }

    /// Schedule one stage under the installed plan: per-task attempt loops
    /// with bounded retries, blacklisting, node deaths on the virtual
    /// timeline and optional speculative duplicates. `retry_extra[i]`, when
    /// given, is added to every retry attempt of task `i` (MapReduce charges
    /// the HDFS re-read from a surviving replica there). `now` anchors
    /// absolute node-loss instants to the stage-relative clock.
    ///
    /// With an inert plan this reproduces [`VirtualScheduler::schedule_detailed`]
    /// placement-for-placement.
    pub fn schedule_stage(
        &self,
        scheduler: &VirtualScheduler,
        tasks: &[TaskSpec],
        retry_extra: Option<&[SimDuration]>,
        now: SimInstant,
    ) -> Result<FaultySchedule, FaultError> {
        let (stage_seed, plan, losses, carried_blacklist, shared) = {
            let mut g = self.inner.lock();
            g.stage_counter += 1;
            // With a nonzero expiry the blacklist outlives stages: entries
            // still alive at this stage's start seed the stage-local set;
            // expired ones are dropped so healed nodes return to service.
            let carried: Vec<u32> = if g.plan.blacklist_expiry > SimDuration::ZERO {
                g.blacklist.retain(|_, expiry| *expiry > now);
                g.blacklist.keys().copied().collect()
            } else {
                Vec::new()
            };
            (
                g.stage_counter,
                g.plan.clone(),
                g.losses.clone(),
                carried,
                g.shared.clone(),
            )
        };

        let spec = scheduler.spec();
        let nodes = spec.nodes as usize;
        let cores_per_node = spec.cores_per_node as usize;
        // Placement is restricted to the scheduler's node slice (the job's
        // executor grant); death and slow-factor state stays indexed by
        // absolute node id so one cluster-wide fault plan reads the same
        // for every job.
        let (node_lo, node_count) = scheduler.node_slice();
        let total_cores = node_count * cores_per_node;
        let locality_wait = scheduler.locality_wait();
        let far = SimDuration::from_secs(f64::MAX / 4.0);
        let mut units: u64 = 0;

        // Stage-relative *detected* death time per node (None = survives the
        // stage). With a heartbeat timeout the node keeps receiving tasks
        // until the driver notices the silence; `actual` is when the machine
        // really stopped, which is when its attempts stop making progress.
        let death: Vec<Option<SimDuration>> = (0..nodes)
            .map(|n| {
                losses
                    .iter()
                    .filter(|(id, _)| id.index() == n)
                    .map(|(_, t)| plan.detection_instant(*t).since(now))
                    .min()
            })
            .collect();
        let actual_death: Vec<Option<SimDuration>> = (0..nodes)
            .map(|n| {
                losses
                    .iter()
                    .filter(|(id, _)| id.index() == n)
                    .map(|(_, t)| t.since(now))
                    .min()
            })
            .collect();
        let slow: Vec<f64> = (0..nodes)
            .map(|n| plan.slow_factor(NodeId(n as u32)))
            .collect();

        // Blacklisting is stage-scoped by default, like Spark's stage-level
        // blacklisting: a node accumulating `blacklist_after` crash failures
        // in this stage takes no further tasks this stage. With a nonzero
        // `blacklist_expiry`, entries carried from earlier stages start the
        // stage blacklisted, and new entries are written back with an expiry.
        let mut node_failures: FxHashMap<u32, u32> = FxHashMap::default();
        let mut blacklisted: FxHashSet<u32> = carried_blacklist.iter().copied().collect();
        let mut expiry_updates: Vec<(u32, SimDuration)> = Vec::new();

        // Foreign entries from the cluster-owned shared blacklist exclude
        // those nodes for this stage too — a machine another job's stage
        // found bad is bad for everyone — but never silently: every
        // consultation is counted for `sched.blacklist_shared_hits`.
        let mut shared_hits = 0u64;
        if let Some((bl, job)) = &shared {
            for n in bl.foreign_nodes(*job) {
                let abs = n as usize;
                if abs >= node_lo && abs < node_lo + node_count && blacklisted.insert(n) {
                    shared_hits += 1;
                }
            }
        }

        let mut free = vec![SimDuration::ZERO; total_cores];
        let mut count = vec![0usize; total_cores];
        let mut total_busy = SimDuration::ZERO;
        let mut last_activity = SimDuration::ZERO;
        let mut recovery = RecoveryCounters::default();
        let mut placements: Vec<TaskPlacement> = Vec::with_capacity(tasks.len());

        // Median base duration, the speculation straggler threshold.
        let median = {
            let mut durs: Vec<SimDuration> = tasks.iter().map(|t| t.duration).collect();
            durs.sort();
            durs.get(durs.len() / 2)
                .copied()
                .unwrap_or(SimDuration::ZERO)
        };

        // Whether a task launched at `start` on this core can begin at all.
        // Cores are slice-relative; `node_of` yields the absolute node id.
        let node_of = |core: usize| node_lo + core / cores_per_node;
        let usable = |bl: &FxHashSet<u32>,
                      death: &[Option<SimDuration>],
                      core: usize,
                      start: SimDuration| {
            let n = node_of(core);
            !bl.contains(&(n as u32)) && death[n].is_none_or(|d| start < d)
        };

        for (i, t) in tasks.iter().enumerate() {
            let extra = retry_extra.map_or(SimDuration::ZERO, |e| e[i]);
            let mut failures = 0u32;
            let mut launches = 0u32;
            let mut earliest = SimDuration::ZERO; // resubmission delay gate
            let max_launches = plan.max_task_failures + node_count as u32 + 1;

            'attempts: loop {
                launches += 1;
                if failures >= plan.max_task_failures {
                    return Err(FaultError::TaskAborted {
                        partition: i,
                        failures,
                        max_task_failures: plan.max_task_failures,
                    });
                }
                if launches > max_launches {
                    return Err(FaultError::NoHealthyNodes { partition: i });
                }
                if launches > 1 {
                    recovery.task_retries += 1;
                }

                // Core choice: the base scheduler's delay-scheduling rule,
                // restricted to cores whose node is alive at launch time.
                let eff = |free: &[SimDuration], c: usize| free[c].max(earliest);
                let earliest_usable =
                    |free: &[SimDuration], bl: &FxHashSet<u32>, lo: usize, hi: usize| {
                        let mut best: Option<usize> = None;
                        for c in lo..hi {
                            if usable(bl, &death, c, eff(free, c))
                                && best.is_none_or(|b| eff(free, c) < eff(free, b))
                            {
                                best = Some(c);
                            }
                        }
                        best
                    };
                let local = t
                    .preferred_node
                    .map(|n| scheduler.rel_node(n) * cores_per_node)
                    .and_then(|lo| {
                        units += cores_per_node as u64;
                        earliest_usable(&free, &blacklisted, lo, lo + cores_per_node)
                    });
                let core = match local {
                    Some(l) if eff(&free, l) <= locality_wait => Some(l),
                    Some(l) => {
                        units += total_cores as u64;
                        match earliest_usable(&free, &blacklisted, 0, total_cores) {
                            Some(gl) if eff(&free, l) <= eff(&free, gl) => Some(l),
                            other => other,
                        }
                    }
                    None => {
                        units += total_cores as u64;
                        earliest_usable(&free, &blacklisted, 0, total_cores)
                    }
                };
                let Some(core) = core else {
                    return Err(FaultError::NoHealthyNodes { partition: i });
                };
                let node = node_of(core);
                let start = eff(&free, core);
                let mut dur = t.duration * slow[node];
                if launches > 1 {
                    dur += extra;
                }
                let end = start + dur;

                // Earliest failure: the node dying mid-attempt, or the
                // seeded crash roll. An attempt overlapping the *actual*
                // death hangs until the driver declares the node lost at the
                // *detected* instant (with a zero heartbeat timeout the two
                // coincide and this is the legacy behaviour).
                let death_at = actual_death[node]
                    .filter(|d| *d < end)
                    .and_then(|_| death[node]);
                let crash_at = plan
                    .crash_point(stage_seed, i, launches)
                    .map(|frac| start + dur * frac);
                let fail_at = match (death_at, crash_at) {
                    (Some(d), Some(c)) => Some(d.min(c)),
                    (d, c) => d.or(c),
                };

                if let Some(fail) = fail_at {
                    let is_death = death_at.is_some_and(|d| d <= fail);
                    recovery.task_failures += 1;
                    if !is_death {
                        failures += 1;
                        let nf = node_failures.entry(node as u32).or_insert(0);
                        *nf += 1;
                        // Never blacklist the last node still able to run
                        // tasks — the plan's crashes are cluster-wide, not
                        // evidence against one machine.
                        let healthy_elsewhere = (node_lo..node_lo + node_count).any(|n| {
                            n != node
                                && !blacklisted.contains(&(n as u32))
                                && death[n].is_none_or(|d| fail < d)
                        });
                        if *nf >= plan.blacklist_after
                            && healthy_elsewhere
                            && blacklisted.insert(node as u32)
                        {
                            recovery.nodes_blacklisted += 1;
                            if plan.blacklist_expiry > SimDuration::ZERO {
                                expiry_updates.push((node as u32, fail + plan.blacklist_expiry));
                            }
                            // Cluster-owned visibility: other jobs consult
                            // this entry (attributed) until we complete.
                            if let Some((bl, job)) = &shared {
                                bl.publish(node as u32, *job);
                            }
                        }
                    }
                    total_busy += fail - start;
                    free[core] = if is_death { far } else { fail };
                    count[core] += 1;
                    last_activity = last_activity.max(fail);
                    earliest = fail + plan.resubmit_delay;
                    continue 'attempts;
                }

                // The attempt will finish. Straggling on a slow node may get
                // a speculative copy on the earliest healthy fast node.
                let mut spec_copy: Option<(usize, SimDuration, SimDuration)> = None;
                if plan.speculation
                    && slow[node] > 1.0
                    && median > SimDuration::ZERO
                    && dur >= median * plan.speculation_multiplier
                {
                    let mut best: Option<usize> = None;
                    for c in 0..total_cores {
                        let n = node_of(c);
                        if n == node || slow[n] > 1.0 {
                            continue;
                        }
                        let s = free[c].max(start);
                        if !usable(&blacklisted, &death, c, s)
                            || death[n].is_some_and(|d| d < s + t.duration)
                        {
                            continue;
                        }
                        if best.is_none_or(|b| s < free[b].max(start)) {
                            best = Some(c);
                        }
                    }
                    if let Some(c) = best {
                        let s = free[c].max(start);
                        if s + t.duration < end {
                            spec_copy = Some((c, s, t.duration));
                            recovery.speculative_launched += 1;
                        }
                    }
                }

                match spec_copy {
                    Some((copy_core, copy_start, copy_dur)) => {
                        let copy_end = copy_start + copy_dur;
                        // First finisher wins; the loser is killed then.
                        recovery.speculative_wins += 1;
                        placements.push(TaskPlacement {
                            node: NodeId(node_of(copy_core) as u32),
                            core: copy_core % cores_per_node,
                            start: copy_start,
                            duration: copy_dur,
                        });
                        free[copy_core] = copy_end;
                        free[core] = copy_end; // original killed at copy finish
                        count[copy_core] += 1;
                        count[core] += 1;
                        total_busy += copy_dur + (copy_end - start);
                        last_activity = last_activity.max(copy_end);
                    }
                    None => {
                        placements.push(TaskPlacement {
                            node: NodeId(node as u32),
                            core: core % cores_per_node,
                            start,
                            duration: dur,
                        });
                        free[core] = end;
                        count[core] += 1;
                        total_busy += dur;
                        last_activity = last_activity.max(end);
                    }
                }
                break 'attempts;
            }
        }

        if !expiry_updates.is_empty() || shared_hits > 0 {
            let mut g = self.inner.lock();
            for (node, rel_expiry) in expiry_updates {
                let abs = now + rel_expiry;
                let e = g.blacklist.entry(node).or_insert(abs);
                *e = (*e).max(abs);
            }
            g.shared_hits += shared_hits;
        }

        let waves = count.iter().copied().max().unwrap_or(0);
        // Killing the congested data-local node can accidentally "improve"
        // placement (its queue evaporates and delay scheduling stops
        // waiting for it). Real recovery never beats the healthy plan — the
        // survivors still have to re-fetch everything the dead node held —
        // so the fault-free makespan is a floor on stage time.
        let healthy = scheduler.schedule_detailed(tasks);
        units += healthy.decision_units;
        Ok(FaultySchedule {
            schedule: DetailedSchedule {
                outcome: ScheduleOutcome {
                    makespan: last_activity.max(healthy.outcome.makespan),
                    total_busy,
                    tasks: tasks.len(),
                    waves,
                },
                placements,
                decision_units: units,
            },
            recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, GIB};

    fn sched(nodes: u32, cores: u32) -> VirtualScheduler {
        VirtualScheduler::new(ClusterSpec::new(nodes, cores, GIB))
    }

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn uniform(n: usize, dur: f64) -> Vec<TaskSpec> {
        (0..n).map(|_| TaskSpec::anywhere(secs(dur))).collect()
    }

    #[test]
    fn inert_plan_matches_plain_scheduler() {
        let s = sched(3, 2);
        let tasks: Vec<TaskSpec> = (0..17)
            .map(|i| {
                if i % 3 == 0 {
                    TaskSpec::local(secs(0.1 * (i % 5 + 1) as f64), NodeId(i as u32 % 3))
                } else {
                    TaskSpec::anywhere(secs(0.1 * (i % 5 + 1) as f64))
                }
            })
            .collect();
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(7)); // enabled but inert
        let faulty = fc
            .schedule_stage(&s, &tasks, None, SimInstant::EPOCH)
            .expect("inert plan cannot abort");
        let base = s.schedule_detailed(&tasks);
        assert_eq!(faulty.schedule.outcome, base.outcome);
        assert_eq!(faulty.schedule.placements, base.placements);
        assert!(!faulty.recovery.any());
    }

    #[test]
    fn crashes_are_retried_and_counted() {
        let s = sched(2, 2);
        let fc = FaultController::new();
        fc.set_plan(
            FaultPlan::seeded(11)
                .crash_tasks(0.4)
                .with_max_task_failures(10),
        );
        let out = fc
            .schedule_stage(&s, &uniform(40, 1.0), None, SimInstant::EPOCH)
            .expect("40% crash rate stays well under a 10-attempt budget");
        assert!(out.recovery.task_failures > 0, "{:?}", out.recovery);
        assert_eq!(out.recovery.task_failures, out.recovery.task_retries);
        // Failed attempt time counts as busy time on top of the real work.
        assert!(out.schedule.outcome.total_busy > secs(40.0));
        assert_eq!(out.schedule.placements.len(), 40);
    }

    #[test]
    fn crash_decisions_are_deterministic() {
        let run = |seed| {
            let fc = FaultController::new();
            fc.set_plan(
                FaultPlan::seeded(seed)
                    .crash_tasks(0.3)
                    .with_max_task_failures(10),
            );
            let out = fc
                .schedule_stage(&sched(2, 2), &uniform(30, 1.0), None, SimInstant::EPOCH)
                .expect("under budget");
            (out.recovery, out.schedule.outcome)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0, "different seeds crash differently");
    }

    #[test]
    fn certain_crash_aborts_with_descriptive_error() {
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(1).crash_tasks(1.0));
        let err = fc
            .schedule_stage(&sched(2, 2), &uniform(3, 1.0), None, SimInstant::EPOCH)
            .expect_err("every attempt crashes");
        match &err {
            FaultError::TaskAborted {
                failures,
                max_task_failures,
                ..
            } => {
                assert_eq!(*failures, *max_task_failures);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("max_task_failures"));
    }

    #[test]
    fn dead_node_takes_no_tasks() {
        let s = sched(2, 1);
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(0), SimInstant::EPOCH));
        let out = fc
            .schedule_stage(&s, &uniform(4, 1.0), None, SimInstant::EPOCH)
            .expect("node 1 survives");
        assert!(out.schedule.placements.iter().all(|p| p.node == NodeId(1)));
        assert_eq!(out.schedule.outcome.makespan, secs(4.0));
    }

    #[test]
    fn mid_stage_death_fails_running_attempts() {
        let s = sched(2, 1);
        let fc = FaultController::new();
        // Node 0 dies half-way through the first wave.
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(0), SimInstant::from_secs(0.5)));
        let out = fc
            .schedule_stage(&s, &uniform(2, 1.0), None, SimInstant::EPOCH)
            .expect("node 1 survives");
        assert_eq!(out.recovery.task_failures, 1);
        assert_eq!(out.recovery.task_retries, 1);
        assert!(out.schedule.placements.iter().all(|p| p.node == NodeId(1)));
        // The retry waits for the resubmission delay and node 1's queue.
        assert!(out.schedule.outcome.makespan > secs(1.0));
    }

    #[test]
    fn all_nodes_dead_is_an_error() {
        let fc = FaultController::new();
        fc.set_plan(
            FaultPlan::seeded(0)
                .lose_node_at(NodeId(0), SimInstant::EPOCH)
                .lose_node_at(NodeId(1), SimInstant::EPOCH),
        );
        let err = fc
            .schedule_stage(&sched(2, 2), &uniform(2, 1.0), None, SimInstant::EPOCH)
            .expect_err("nowhere to run");
        assert!(matches!(err, FaultError::NoHealthyNodes { .. }));
        assert!(err.to_string().contains("dead or blacklisted"));
    }

    #[test]
    fn repeated_failures_blacklist_the_node() {
        let s = sched(4, 1);
        let fc = FaultController::new();
        fc.set_plan(
            FaultPlan::seeded(3)
                .crash_tasks(0.5)
                .with_blacklist_after(2)
                .with_max_task_failures(20),
        );
        let mut total = RecoveryCounters::default();
        for _ in 0..6 {
            let out = fc
                .schedule_stage(&s, &uniform(16, 1.0), None, SimInstant::EPOCH)
                .expect("budget of 10 is generous");
            total.merge(&out.recovery);
        }
        assert!(total.nodes_blacklisted > 0, "{total:?}");
    }

    #[test]
    fn slow_node_stretches_tasks_and_speculation_rescues_them() {
        let s = sched(4, 1);
        let tasks = uniform(4, 1.0);
        let base = FaultPlan::seeded(0).slow_node(NodeId(0), 10.0);

        let fc_slow = FaultController::new();
        fc_slow.set_plan(base.clone());
        let slow = fc_slow
            .schedule_stage(&s, &tasks, None, SimInstant::EPOCH)
            .expect("no crashes");
        assert_eq!(slow.schedule.outcome.makespan, secs(10.0), "straggler");

        let fc_spec = FaultController::new();
        fc_spec.set_plan(base.with_speculation());
        let spec = fc_spec
            .schedule_stage(&s, &tasks, None, SimInstant::EPOCH)
            .expect("no crashes");
        assert!(spec.recovery.speculative_launched >= 1);
        assert_eq!(
            spec.recovery.speculative_wins,
            spec.recovery.speculative_launched
        );
        assert!(
            spec.schedule.outcome.makespan < slow.schedule.outcome.makespan,
            "speculative copy beats the straggler: {:?} vs {:?}",
            spec.schedule.outcome.makespan,
            slow.schedule.outcome.makespan
        );
        // The winning placement is on a fast node.
        assert!(spec.schedule.placements.iter().all(|p| p.node != NodeId(0)));
    }

    #[test]
    fn retry_extra_charges_reread_on_retries_only() {
        let s = sched(2, 1);
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(0), SimInstant::from_secs(0.5)));
        let tasks = vec![
            TaskSpec::local(secs(1.0), NodeId(0)),
            TaskSpec::local(secs(1.0), NodeId(1)),
        ];
        let extras = vec![secs(5.0), secs(5.0)];
        let out = fc
            .schedule_stage(&s, &tasks, Some(&extras), SimInstant::EPOCH)
            .expect("node 1 survives");
        // Task 0 failed at 0.5s, retried on node 1 with the 5s re-read.
        let retried = &out.schedule.placements[0];
        assert_eq!(retried.node, NodeId(1));
        assert_eq!(retried.duration, secs(6.0));
        // Task 1 never failed: no extra.
        assert_eq!(out.schedule.placements[1].duration, secs(1.0));
    }

    #[test]
    fn manual_kill_and_queries() {
        let fc = FaultController::new();
        assert!(!fc.active());
        assert!(fc.kill_node(NodeId(2), SimInstant::from_secs(1.0)));
        assert!(
            !fc.kill_node(NodeId(2), SimInstant::from_secs(2.0)),
            "already dead"
        );
        assert!(fc.active());
        assert!(fc.dead_nodes(SimInstant::EPOCH).is_empty());
        assert_eq!(fc.dead_nodes(SimInstant::from_secs(1.0)), vec![NodeId(2)]);
        // Manual kills are pre-applied: the engine already invalidated data.
        assert!(fc.take_new_losses(SimInstant::from_secs(5.0)).is_empty());
    }

    #[test]
    fn planned_losses_surface_exactly_once() {
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(1), SimInstant::from_secs(2.0)));
        assert!(fc.take_new_losses(SimInstant::from_secs(1.0)).is_empty());
        assert_eq!(
            fc.take_new_losses(SimInstant::from_secs(3.0)),
            vec![NodeId(1)]
        );
        assert!(fc.take_new_losses(SimInstant::from_secs(4.0)).is_empty());
        assert_eq!(fc.dead_nodes(SimInstant::from_secs(4.0)), vec![NodeId(1)]);
    }

    #[test]
    fn transient_ladder_is_deterministic_and_bounded() {
        let plan = FaultPlan::seeded(9)
            .flaky_fetches(0.5)
            .with_fetch_retries(4);
        let mut saw_retry = false;
        let mut saw_clean = false;
        for part in 0..64 {
            let a = plan.transient_outcome(TransientKind::ShuffleFetch, 3, part);
            let b = plan.transient_outcome(TransientKind::ShuffleFetch, 3, part);
            assert_eq!(a, b, "same site must roll identically");
            assert!(a.retries <= 4);
            if a.escalated {
                assert_eq!(a.retries, 4, "escalation only after the full ladder");
            }
            if a.retries > 0 {
                saw_retry = true;
                assert!(a.backoff_micros > 0, "every retry waits a backoff");
            } else if !a.escalated {
                saw_clean = true;
                assert_eq!(a.backoff_micros, 0);
            }
        }
        assert!(saw_retry && saw_clean, "50% flakiness mixes outcomes");
        // Different kinds and seeds roll independently.
        let hdfs = FaultPlan::seeded(9).flaky_hdfs(0.5).with_fetch_retries(4);
        let outcomes_a: Vec<_> = (0..64)
            .map(|p| plan.transient_outcome(TransientKind::ShuffleFetch, 3, p))
            .collect();
        let outcomes_b: Vec<_> = (0..64)
            .map(|p| hdfs.transient_outcome(TransientKind::HdfsRead, 3, p))
            .collect();
        assert_ne!(outcomes_a, outcomes_b);
    }

    #[test]
    fn backoff_grows_exponentially_with_jitter() {
        let plan = FaultPlan::seeded(0)
            .flaky_fetches(1.0)
            .with_fetch_retries(3)
            .with_fetch_backoff_base(SimDuration::from_secs(0.1));
        let out = plan.transient_outcome(TransientKind::ShuffleFetch, 0, 0);
        assert!(out.escalated);
        assert_eq!(out.retries, 3);
        // base*(1+j0) + 2*base*(1+j1) + 4*base*(1+j2): between 0.7s (no
        // jitter) and 1.4s (max jitter).
        let secs = out.backoff_micros as f64 / 1e6;
        assert!((0.7..=1.4).contains(&secs), "backoff {secs}s");
    }

    #[test]
    fn inert_plan_never_rolls_transient_failures() {
        let fc = FaultController::new();
        assert!(!fc.transient(TransientKind::ShuffleFetch, 1, 2).any());
        fc.set_plan(FaultPlan::seeded(1));
        assert!(!fc.transient(TransientKind::HdfsRead, 1, 2).any());
    }

    #[test]
    fn heartbeat_timeout_delays_detection() {
        let death = SimInstant::from_secs(1.3);
        // Zero timeout: detection is the death itself (legacy behaviour).
        let instant = FaultPlan::seeded(0);
        assert_eq!(instant.detection_instant(death), death);
        // Beats every 0.5s (last at 1.0s), timeout 1.0s → detected at 2.0s.
        let hb = FaultPlan::seeded(0)
            .with_heartbeat(SimDuration::from_secs(0.5), SimDuration::from_secs(1.0));
        assert_eq!(hb.detection_instant(death), SimInstant::from_secs(2.0));

        // The loss's side effects surface only at the detection instant.
        let fc = FaultController::new();
        fc.set_plan(hb.lose_node_at(NodeId(1), death));
        assert!(fc.take_new_losses(SimInstant::from_secs(1.9)).is_empty());
        assert_eq!(
            fc.take_new_losses(SimInstant::from_secs(2.0)),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn undetected_death_still_takes_tasks_and_fails_them() {
        let s = sched(2, 1);
        let fc = FaultController::new();
        // Node 0 dies at 0.5s but the driver only notices at 2.0s: the
        // doomed node keeps receiving work until then.
        fc.set_plan(
            FaultPlan::seeded(0)
                .with_heartbeat(SimDuration::from_secs(0.5), SimDuration::from_secs(1.5))
                .lose_node_at(NodeId(0), SimInstant::from_secs(0.5)),
        );
        let out = fc
            .schedule_stage(&s, &uniform(4, 1.0), None, SimInstant::EPOCH)
            .expect("node 1 survives");
        // Attempts placed on node 0 before detection (2.0s) fail there.
        assert!(out.recovery.task_failures >= 1, "{:?}", out.recovery);
        assert!(out.schedule.placements.iter().all(|p| p.node == NodeId(1)));
        // Compared to instant detection, the delayed version wastes time.
        let fc_instant = FaultController::new();
        fc_instant
            .set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(0), SimInstant::from_secs(0.5)));
        let instant = fc_instant
            .schedule_stage(&s, &uniform(4, 1.0), None, SimInstant::EPOCH)
            .expect("node 1 survives");
        assert!(
            out.schedule.outcome.makespan >= instant.schedule.outcome.makespan,
            "late detection can only cost time"
        );
    }

    #[test]
    fn blacklist_expiry_carries_and_heals_across_stages() {
        let s = sched(4, 1);
        let fc = FaultController::new();
        fc.set_plan(
            FaultPlan::seeded(3)
                .crash_tasks(0.5)
                .with_blacklist_after(2)
                .with_max_task_failures(20)
                .with_blacklist_expiry(SimDuration::from_secs(50.0)),
        );
        // Accumulate failures until some node is blacklisted.
        let mut total = RecoveryCounters::default();
        for _ in 0..6 {
            let out = fc
                .schedule_stage(&s, &uniform(16, 1.0), None, SimInstant::EPOCH)
                .expect("generous budget");
            total.merge(&out.recovery);
        }
        assert!(total.nodes_blacklisted > 0, "{total:?}");

        // A crash-free follow-up stage *before* expiry still avoids the
        // blacklisted node(s); *after* expiry every node serves again.
        let clean = |at: SimInstant| {
            let g = fc
                .schedule_stage(&s, &uniform(8, 1.0), None, at)
                .expect("no crashes rolled in a fresh stage can abort");
            let mut nodes: Vec<u32> = g.schedule.placements.iter().map(|p| p.node.0).collect();
            nodes.sort();
            nodes.dedup();
            nodes.len()
        };
        // Note: crash rolls are per-stage-seed, so later stages may still
        // crash; what matters is node coverage, checked via a plan swap.
        fc.set_plan(FaultPlan::seeded(3).with_blacklist_expiry(SimDuration::from_secs(50.0)));
        assert!(
            clean(SimInstant::from_secs(1.0)) < 4,
            "pre-expiry stages must avoid the blacklisted node"
        );
        assert_eq!(
            clean(SimInstant::from_secs(100.0)),
            4,
            "post-expiry stages use the healed node again"
        );
    }

    #[test]
    fn fault_plan_round_trips_through_json() {
        let plan = FaultPlan::seeded(42)
            .crash_tasks(0.1)
            .with_max_task_failures(10)
            .with_resubmit_delay(SimDuration::from_secs(0.3))
            .lose_node_at(NodeId(2), SimInstant::from_secs(1.7))
            .slow_node(NodeId(1), 3.0)
            .with_speculation()
            .with_blacklist_after(5)
            .flaky_fetches(0.25)
            .flaky_hdfs(0.125)
            .with_fetch_retries(6)
            .with_fetch_backoff_base(SimDuration::from_secs(0.07))
            .with_heartbeat(SimDuration::from_secs(0.4), SimDuration::from_secs(1.2))
            .with_blacklist_expiry(SimDuration::from_secs(30.0))
            .with_checkpoint_interval(2)
            .corrupt_shuffle(0.0625)
            .corrupt_cache(0.03125)
            .corrupt_hdfs(0.015625)
            .corrupt_block(IntegrityTier::Cache, 9, 3)
            .corrupt_all_replicas(IntegrityTier::Hdfs, 4, 0)
            .inject_oom(0.03125)
            .with_mem_budget(512 * 1024 * 1024);
        let text = plan.to_json().to_string();
        let back = FaultPlan::from_json(&crate::json::parse(&text).expect("valid JSON"))
            .expect("well-formed plan");
        // Field-for-field equality (FaultPlan has f64s, so compare the
        // deterministic JSON forms).
        assert_eq!(plan.to_json().to_string(), back.to_json().to_string());
        assert_eq!(back.seed, 42);
        assert_eq!(
            back.node_losses,
            vec![(NodeId(2), SimInstant::from_secs(1.7))]
        );
        assert_eq!(back.fetch_retries, 6);
        assert_eq!(back.checkpoint_interval, 2);
        assert!(back.speculation);
        assert_eq!(back.shuffle_corruption_prob, 0.0625);
        assert_eq!(back.cache_corruption_prob, 0.03125);
        assert_eq!(back.hdfs_corruption_prob, 0.015625);
        assert_eq!(
            back.targeted_corruptions,
            vec![
                (IntegrityTier::Cache, 9, 3, 1),
                (IntegrityTier::Hdfs, 4, 0, u32::MAX),
            ]
        );
        assert_eq!(back.oom_prob, 0.03125);
        assert_eq!(back.mem_budget_override, Some(512 * 1024 * 1024));
        // A plan without the override round-trips the `null` too.
        let bare = FaultPlan::seeded(1).inject_oom(0.5);
        let bare_back =
            FaultPlan::from_json(&crate::json::parse(&bare.to_json().to_string()).unwrap())
                .unwrap();
        assert_eq!(bare_back.mem_budget_override, None);
        assert_eq!(bare_back.oom_prob, 0.5);
        assert!(bare.memory_active() && bare.has_faults());
        assert!(!FaultPlan::seeded(1).memory_active());
    }

    #[test]
    fn oom_rolls_are_deterministic_and_halve_per_attempt() {
        let plan = FaultPlan::seeded(21).inject_oom(0.5);
        let a: Vec<bool> = (0..64).map(|p| plan.oom_roll(9, p, 0, 1, 0)).collect();
        let b: Vec<bool> = (0..64).map(|p| plan.oom_roll(9, p, 0, 1, 0)).collect();
        assert_eq!(a, b, "same plan denies the same acquisitions");
        assert!(
            a.iter().any(|x| *x) && a.iter().any(|x| !*x),
            "mixed at 50%"
        );
        // Distinct sites and rolls are independent hash domains.
        let other_site: Vec<bool> = (0..64).map(|p| plan.oom_roll(9, p, 0, 2, 0)).collect();
        assert_ne!(a, other_site);
        // Retry attempts are denied at a halved rate (doubled slice).
        let denials = |attempt: u32| {
            (0..4096)
                .filter(|p| plan.oom_roll(9, *p, 0, 1, attempt))
                .count()
        };
        let (d0, d1) = (denials(0), denials(1));
        assert!(
            d1 * 3 < d0 * 2,
            "attempt 1 should deny roughly half as often: {d0} vs {d1}"
        );
        assert!(!FaultPlan::seeded(21).oom_roll(9, 0, 0, 1, 0), "inert");
    }

    #[test]
    fn memory_counters_merge_peak_with_max_and_flow_through_recovery() {
        let mut a = MemoryCounters {
            peak_execution_bytes: 1000,
            spills: 2,
            spill_bytes: 64,
            oom_injected: 1,
            oom_survived_by_degradation: 1,
            ..MemoryCounters::default()
        };
        let b = MemoryCounters {
            peak_execution_bytes: 700,
            spills: 1,
            spill_bytes: 32,
            degradations: 1,
            oom_injected: 1,
            oom_killed: 1,
            ..MemoryCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.peak_execution_bytes, 1000, "peak merges with max");
        assert_eq!(a.spills, 3);
        assert_eq!(a.spill_bytes, 96);
        assert_eq!(a.degradations, 1);
        assert_eq!(a.oom_injected, a.oom_killed + a.oom_survived_by_degradation);
        assert!(a.any());

        let mut r = RecoveryCounters::default();
        r.merge(&RecoveryCounters {
            mem: b,
            ..RecoveryCounters::default()
        });
        assert_eq!(r.mem.oom_killed, 1);
        assert!(r.any(), "memory counters alone make recovery non-empty");
    }

    #[test]
    fn unknown_json_field_is_rejected_by_name() {
        let v = crate::json::parse(r#"{"seed": 7, "fetch_retrys": 5}"#).unwrap();
        let err = FaultPlan::from_json(&v).expect_err("typo'd field must fail");
        assert!(err.contains("fetch_retrys"), "error names the field: {err}");
        assert!(err.contains("unknown fault plan field"), "got: {err}");
        // The known-field list the error prints advertises the memory knobs,
        // so a typo'd `oom_prob`/`mem_budget_override` points at the fix.
        assert!(
            err.contains("oom_prob") && err.contains("mem_budget_override"),
            "known-field list names the memory knobs: {err}"
        );
    }

    #[test]
    fn minimal_oom_plan_json_parses() {
        // Mirror of `results/oom.fault.json`: hand-written plans may carry
        // just the memory knobs and inherit every other default.
        let v = crate::json::parse(
            r#"{"seed": 42, "oom_prob": 0.05, "mem_budget_override": 25165824}"#,
        )
        .unwrap();
        let plan = FaultPlan::from_json(&v).expect("minimal plan");
        assert_eq!(plan.oom_prob, 0.05);
        assert_eq!(plan.mem_budget_override, Some(24 * 1024 * 1024));
        assert!(plan.memory_active());
    }

    #[test]
    fn bad_corruption_tier_is_rejected() {
        let v = crate::json::parse(r#"{"targeted_corruptions": [["ssd", 1, 2, 1]]}"#).unwrap();
        let err = FaultPlan::from_json(&v).expect_err("unknown tier");
        assert!(err.contains("ssd"), "got: {err}");
    }

    #[test]
    fn corruption_rolls_are_deterministic_and_tier_independent() {
        let plan = FaultPlan::seeded(13)
            .corrupt_shuffle(0.5)
            .corrupt_cache(0.5);
        let a: Vec<bool> = (0..64)
            .map(|p| plan.corruption_roll(IntegrityTier::Shuffle, 3, p, 0))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|p| plan.corruption_roll(IntegrityTier::Shuffle, 3, p, 0))
            .collect();
        assert_eq!(a, b, "same plan rots the same copies");
        assert!(
            a.iter().any(|x| *x) && a.iter().any(|x| !*x),
            "mixed at 50%"
        );
        let c: Vec<bool> = (0..64)
            .map(|p| plan.corruption_roll(IntegrityTier::Cache, 3, p, 0))
            .collect();
        assert_ne!(a, c, "tiers roll in independent hash domains");
        // Inert tier never rots; targeted entries rot regardless of probs.
        assert!(!plan.corruption_roll(IntegrityTier::Hdfs, 3, 0, 0));
        let targeted = FaultPlan::seeded(0).corrupt_all_replicas(IntegrityTier::Hdfs, 7, 2);
        assert!(targeted.corruption_roll(IntegrityTier::Hdfs, 7, 2, 0));
        assert!(targeted.corruption_roll(IntegrityTier::Hdfs, 7, 2, 5));
        assert!(!targeted.corruption_roll(IntegrityTier::Hdfs, 7, 3, 0));
        assert!(targeted.integrity_active() && targeted.has_faults());
    }

    #[test]
    fn take_corruption_detects_once_then_heals() {
        let fc = FaultController::new();
        assert!(
            !fc.take_corruption(IntegrityTier::Cache, 1, 0, 0),
            "inert controller never rots"
        );
        fc.set_plan(FaultPlan::seeded(0).corrupt_block(IntegrityTier::Cache, 1, 0));
        assert!(fc.corrupted(IntegrityTier::Cache, 1, 0, 0));
        assert!(
            fc.take_corruption(IntegrityTier::Cache, 1, 0, 0),
            "first read detects"
        );
        assert!(
            !fc.take_corruption(IntegrityTier::Cache, 1, 0, 0),
            "repaired copy stays clean"
        );
        assert!(!fc.corrupted(IntegrityTier::Cache, 1, 0, 0), "healed");
        assert!(
            !fc.take_corruption(IntegrityTier::Cache, 1, 1, 0),
            "other copies clean"
        );
    }

    #[test]
    fn integrity_counters_merge_and_flow_through_recovery() {
        let mut a = IntegrityCounters {
            corruptions_injected: 2,
            corruptions_detected: 2,
            corruptions_repaired: 2,
            repaired_via_replica: 1,
            repaired_via_recompute: 1,
            ..IntegrityCounters::default()
        };
        let b = IntegrityCounters {
            corruptions_injected: 1,
            corruptions_detected: 1,
            corruptions_repaired: 1,
            repaired_via_resubmit: 1,
            ..IntegrityCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.corruptions_injected, 3);
        assert_eq!(a.repaired_via_resubmit, 1);
        assert!(a.any());

        let mut r = RecoveryCounters::default();
        assert!(!r.any());
        r.merge(&RecoveryCounters {
            integrity: b,
            ..RecoveryCounters::default()
        });
        assert_eq!(r.integrity.corruptions_detected, 1);
        assert!(r.any(), "integrity counters alone make recovery non-empty");
    }

    #[test]
    fn minimal_json_plan_falls_back_to_defaults() {
        let v = crate::json::parse(r#"{"seed": 7, "task_crash_prob": 0.2}"#).unwrap();
        let plan = FaultPlan::from_json(&v).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.task_crash_prob, 0.2);
        assert_eq!(plan.max_task_failures, DEFAULT_MAX_TASK_FAILURES);
        assert_eq!(plan.fetch_retries, DEFAULT_FETCH_RETRIES);
        assert!(FaultPlan::from_json(&crate::json::parse("[1,2]").unwrap()).is_err());
    }

    #[test]
    fn recovery_counters_merge_depth_with_max() {
        let mut a = RecoveryCounters {
            fetch_retries: 2,
            backoff_micros: 100,
            checkpoint_writes: 3,
            checkpoint_reads: 1,
            max_replay_depth: 5,
            ..RecoveryCounters::default()
        };
        let b = RecoveryCounters {
            fetch_retries: 1,
            backoff_micros: 50,
            max_replay_depth: 3,
            ..RecoveryCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.fetch_retries, 3);
        assert_eq!(a.backoff_micros, 150);
        assert_eq!(a.checkpoint_writes, 3);
        assert_eq!(a.checkpoint_reads, 1);
        assert_eq!(a.max_replay_depth, 5, "depth merges with max, not sum");
        assert!(a.any());
    }
}
