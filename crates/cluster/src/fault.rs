//! Deterministic fault injection and Spark-style recovery scheduling.
//!
//! The paper's fault-tolerance story (§II.B) is lineage: lost data is
//! recomputed, not replicated. To *exercise* that story the cluster needs
//! failures, and to keep experiments bit-for-bit reproducible the failures
//! must be part of the virtual timeline, not the host's. A [`FaultPlan`] is
//! a seeded description of everything that goes wrong in a run:
//!
//! * **task crashes** — attempt `a` of partition `p` in stage `s` crashes
//!   iff a hash of `(seed, s, p, a)` falls under the crash probability, so
//!   the same plan always kills the same attempts;
//! * **node losses** — a node dies at a fixed virtual instant; running
//!   attempts fail at the instant of death, and the node takes no further
//!   tasks (engines additionally invalidate its cached partitions and
//!   shuffle map outputs);
//! * **slow nodes** — a degradation factor stretches every task the node
//!   runs, modelling the heterogeneous/degraded workers of Aouad et al.
//!
//! The [`FaultController`] evaluates a plan while scheduling a stage: failed
//! attempts are retried after a resubmission delay (up to
//! [`FaultPlan::max_task_failures`], Spark's default 4), nodes accumulating
//! failures are blacklisted, and — when speculative execution is enabled —
//! straggler attempts on slow nodes get a duplicate launched on a healthy
//! node, first finisher wins. Real data processing still happens exactly
//! once on the host pool; failures exist purely on the virtual timeline, so
//! mining results stay byte-identical while virtual time grows.

use crate::hash::{fx_hash64, FxHashMap, FxHashSet};
use crate::sched::{DetailedSchedule, ScheduleOutcome, TaskPlacement, TaskSpec, VirtualScheduler};
use crate::spec::NodeId;
use crate::sync::Mutex;
use crate::time::{SimDuration, SimInstant};
use std::sync::Arc;

/// Spark's default `spark.task.maxFailures`.
pub const DEFAULT_MAX_TASK_FAILURES: u32 = 4;
/// Delay before a failed task is resubmitted (scheduler round-trip).
pub const DEFAULT_RESUBMIT_DELAY: f64 = 0.2;
/// A surviving attempt this many times slower than the stage median gets a
/// speculative copy (Spark's `spark.speculation.multiplier`).
pub const DEFAULT_SPECULATION_MULTIPLIER: f64 = 1.5;
/// Crash failures on one node before it stops receiving tasks.
pub const DEFAULT_BLACKLIST_AFTER: u32 = 3;

/// A seeded, fully deterministic description of the faults injected into one
/// run. Built with the `with_*`/`crash_*`/`lose_*` chainable constructors.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for all pseudo-random crash decisions.
    pub seed: u64,
    /// Probability that any given task attempt crashes partway through.
    pub task_crash_prob: f64,
    /// Attempts a task may burn on crashes before the stage aborts.
    pub max_task_failures: u32,
    /// Virtual delay between a failure and the retry launch.
    pub resubmit_delay: SimDuration,
    /// Nodes that die, with their virtual time of death.
    pub node_losses: Vec<(NodeId, SimInstant)>,
    /// Nodes running slow: every task duration is multiplied by the factor.
    pub slow_nodes: Vec<(NodeId, f64)>,
    /// Launch duplicate attempts for stragglers on slow nodes.
    pub speculation: bool,
    /// Straggler threshold relative to the stage's median task duration.
    pub speculation_multiplier: f64,
    /// Crash failures on one node before it is blacklisted.
    pub blacklist_after: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::seeded(0)
    }
}

impl FaultPlan {
    /// An inert plan (no faults) carrying `seed` for later crash settings.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            task_crash_prob: 0.0,
            max_task_failures: DEFAULT_MAX_TASK_FAILURES,
            resubmit_delay: SimDuration::from_secs(DEFAULT_RESUBMIT_DELAY),
            node_losses: Vec::new(),
            slow_nodes: Vec::new(),
            speculation: false,
            speculation_multiplier: DEFAULT_SPECULATION_MULTIPLIER,
            blacklist_after: DEFAULT_BLACKLIST_AFTER,
        }
    }

    /// Crash each task attempt with probability `prob` (seed-deterministic).
    pub fn crash_tasks(mut self, prob: f64) -> Self {
        self.task_crash_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Kill `node` at virtual instant `at`.
    pub fn lose_node_at(mut self, node: NodeId, at: SimInstant) -> Self {
        self.node_losses.push((node, at));
        self
    }

    /// Degrade `node`: its tasks run `factor`× slower.
    pub fn slow_node(mut self, node: NodeId, factor: f64) -> Self {
        self.slow_nodes.push((node, factor.max(1.0)));
        self
    }

    /// Enable speculative execution for straggler attempts.
    pub fn with_speculation(mut self) -> Self {
        self.speculation = true;
        self
    }

    /// Override the per-task retry budget.
    pub fn with_max_task_failures(mut self, n: u32) -> Self {
        self.max_task_failures = n.max(1);
        self
    }

    /// Override the resubmission delay.
    pub fn with_resubmit_delay(mut self, d: SimDuration) -> Self {
        self.resubmit_delay = d;
        self
    }

    /// Override the blacklisting threshold.
    pub fn with_blacklist_after(mut self, n: u32) -> Self {
        self.blacklist_after = n.max(1);
        self
    }

    /// True when the plan can actually disturb a run.
    pub fn has_faults(&self) -> bool {
        self.task_crash_prob > 0.0
            || !self.node_losses.is_empty()
            || self.slow_nodes.iter().any(|(_, f)| *f > 1.0)
    }

    /// Deterministic crash decision for one attempt: `Some(fraction)` means
    /// the attempt crashes after running that fraction of its duration.
    fn crash_point(&self, stage_seed: u64, partition: usize, attempt: u32) -> Option<f64> {
        if self.task_crash_prob <= 0.0 {
            return None;
        }
        let key = (self.seed, stage_seed, partition as u64, attempt as u64);
        let roll = (fx_hash64(&key) >> 11) as f64 / (1u64 << 53) as f64;
        if roll >= self.task_crash_prob {
            return None;
        }
        let frac_bits = fx_hash64(&(key, 0x5eedu64));
        Some(0.1 + 0.8 * ((frac_bits >> 11) as f64 / (1u64 << 53) as f64))
    }

    fn slow_factor(&self, node: NodeId) -> f64 {
        self.slow_nodes
            .iter()
            .find(|(n, _)| *n == node)
            .map_or(1.0, |(_, f)| f.max(1.0))
    }
}

/// Failure/retry/speculation counters. Attached to every recorded stage and
/// aggregated by the metrics sink; the stage report prints them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Task attempts that crashed or died with their node.
    pub task_failures: u64,
    /// Attempts re-launched after a failure.
    pub task_retries: u64,
    /// Nodes lost.
    pub nodes_lost: u64,
    /// Nodes blacklisted after repeated failures.
    pub nodes_blacklisted: u64,
    /// Speculative duplicate attempts launched.
    pub speculative_launched: u64,
    /// Speculative attempts that finished before their original.
    pub speculative_wins: u64,
    /// Partitions recomputed through lineage / HDFS re-reads after data
    /// loss (cached partitions, shuffle map outputs, MR map re-executions).
    pub recomputed_partitions: u64,
    /// Shuffle map outputs found missing by a consumer.
    pub fetch_failures: u64,
    /// Broadcast re-distributions after an executor holding blocks died.
    pub broadcast_refetches: u64,
}

impl RecoveryCounters {
    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.task_failures += other.task_failures;
        self.task_retries += other.task_retries;
        self.nodes_lost += other.nodes_lost;
        self.nodes_blacklisted += other.nodes_blacklisted;
        self.speculative_launched += other.speculative_launched;
        self.speculative_wins += other.speculative_wins;
        self.recomputed_partitions += other.recomputed_partitions;
        self.fetch_failures += other.fetch_failures;
        self.broadcast_refetches += other.broadcast_refetches;
    }

    /// True when any counter is nonzero.
    pub fn any(&self) -> bool {
        *self != RecoveryCounters::default()
    }
}

/// Why a fault-aware schedule could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// One task exhausted its retry budget.
    TaskAborted {
        /// Partition whose task kept failing.
        partition: usize,
        /// Crash failures accumulated.
        failures: u32,
        /// The budget that was exceeded.
        max_task_failures: u32,
    },
    /// No node is left alive (and un-blacklisted) to run a task.
    NoHealthyNodes {
        /// Partition that could not be placed.
        partition: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::TaskAborted {
                partition,
                failures,
                max_task_failures,
            } => write!(
                f,
                "task for partition {partition} failed {failures} times, exceeding \
                 max_task_failures = {max_task_failures}; aborting the stage \
                 (raise FaultPlan::with_max_task_failures or lower the crash probability)"
            ),
            FaultError::NoHealthyNodes { partition } => write!(
                f,
                "no healthy node left to run partition {partition}: every node is \
                 dead or blacklisted"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// A fault-aware schedule: the winning placement per task plus what it took
/// to get there.
#[derive(Clone, Debug)]
pub struct FaultySchedule {
    /// Final (winning) placements, in input task order.
    pub schedule: DetailedSchedule,
    /// Failures, retries and speculation accumulated by this stage.
    pub recovery: RecoveryCounters,
}

impl FaultySchedule {
    /// Virtual time past the last successful task end: failed attempts that
    /// outlived every success, plus the healthy-plan makespan floor. The
    /// metrics layer derives stage duration from the task spans alone, so
    /// callers charge this as the stage's trailing time.
    pub fn trailing_pad(&self) -> SimDuration {
        let placed = self
            .schedule
            .placements
            .iter()
            .map(|p| p.start + p.duration)
            .fold(SimDuration::ZERO, SimDuration::max);
        self.schedule.outcome.makespan - placed
    }
}

#[derive(Default)]
struct FaultInner {
    plan: FaultPlan,
    enabled: bool,
    /// All node losses (plan plus manual kills), by virtual instant.
    losses: Vec<(NodeId, SimInstant)>,
    /// Nodes whose data-loss side effects the engine already applied.
    applied: FxHashSet<u32>,
    stage_counter: u64,
}

/// Shared handle evaluating one [`FaultPlan`] over a cluster's lifetime.
/// Lives on the [`crate::SimCluster`]; inert (and free) until a plan is set
/// or a node is killed. Cheap to clone.
#[derive(Clone, Default)]
pub struct FaultController {
    inner: Arc<Mutex<FaultInner>>,
}

impl FaultController {
    /// A controller with no plan (inert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a fault plan. Replaces any previous plan; nodes whose loss
    /// was already applied stay dead.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut g = self.inner.lock();
        let mut losses = plan.node_losses.clone();
        losses.extend(
            g.losses
                .iter()
                .filter(|(n, _)| g.applied.contains(&n.0))
                .copied(),
        );
        g.plan = plan;
        g.losses = losses;
        g.enabled = true;
    }

    /// Copy of the installed plan.
    pub fn plan(&self) -> FaultPlan {
        self.inner.lock().plan.clone()
    }

    /// Whether fault-aware scheduling is on (a plan was set or a node was
    /// killed manually).
    pub fn active(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Kill a node at virtual instant `at` (manual fault injection). Returns
    /// `false` if the node was already dead. The caller is responsible for
    /// invalidating the node's data (the loss is marked applied).
    pub fn kill_node(&self, node: NodeId, at: SimInstant) -> bool {
        let mut g = self.inner.lock();
        if g.losses.iter().any(|(n, t)| *n == node && *t <= at) {
            return false;
        }
        g.losses.push((node, at));
        g.applied.insert(node.0);
        g.enabled = true;
        true
    }

    /// Nodes dead at instant `at`.
    pub fn dead_nodes(&self, at: SimInstant) -> Vec<NodeId> {
        let g = self.inner.lock();
        let mut dead: Vec<NodeId> = g
            .losses
            .iter()
            .filter(|(_, t)| *t <= at)
            .map(|(n, _)| *n)
            .collect();
        dead.sort_by_key(|n| n.0);
        dead.dedup();
        dead
    }

    /// Nodes newly dead at `at` whose data-loss side effects (cache /
    /// shuffle / broadcast invalidation) have not been applied yet. Marks
    /// them applied — each loss is surfaced exactly once.
    pub fn take_new_losses(&self, at: SimInstant) -> Vec<NodeId> {
        let mut g = self.inner.lock();
        let mut fresh: Vec<NodeId> = g
            .losses
            .iter()
            .filter(|(n, t)| *t <= at && !g.applied.contains(&n.0))
            .map(|(n, _)| *n)
            .collect();
        fresh.sort_by_key(|n| n.0);
        fresh.dedup();
        for n in &fresh {
            g.applied.insert(n.0);
        }
        fresh
    }

    /// Schedule one stage under the installed plan: per-task attempt loops
    /// with bounded retries, blacklisting, node deaths on the virtual
    /// timeline and optional speculative duplicates. `retry_extra[i]`, when
    /// given, is added to every retry attempt of task `i` (MapReduce charges
    /// the HDFS re-read from a surviving replica there). `now` anchors
    /// absolute node-loss instants to the stage-relative clock.
    ///
    /// With an inert plan this reproduces [`VirtualScheduler::schedule_detailed`]
    /// placement-for-placement.
    pub fn schedule_stage(
        &self,
        scheduler: &VirtualScheduler,
        tasks: &[TaskSpec],
        retry_extra: Option<&[SimDuration]>,
        now: SimInstant,
    ) -> Result<FaultySchedule, FaultError> {
        let (stage_seed, plan, losses) = {
            let mut g = self.inner.lock();
            g.stage_counter += 1;
            (g.stage_counter, g.plan.clone(), g.losses.clone())
        };

        let spec = scheduler.spec();
        let nodes = spec.nodes as usize;
        let cores_per_node = spec.cores_per_node as usize;
        let total_cores = nodes * cores_per_node;
        let locality_wait = scheduler.locality_wait();
        let far = SimDuration::from_secs(f64::MAX / 4.0);

        // Stage-relative death time per node (None = survives the stage).
        let death: Vec<Option<SimDuration>> = (0..nodes)
            .map(|n| {
                losses
                    .iter()
                    .filter(|(id, _)| id.index() == n)
                    .map(|(_, t)| t.since(now))
                    .min()
            })
            .collect();
        let slow: Vec<f64> = (0..nodes)
            .map(|n| plan.slow_factor(NodeId(n as u32)))
            .collect();

        // Blacklisting is stage-scoped, like Spark's default (stage-level)
        // blacklisting: a node accumulating `blacklist_after` crash failures
        // in this stage takes no further tasks this stage.
        let mut node_failures: FxHashMap<u32, u32> = FxHashMap::default();
        let mut blacklisted: FxHashSet<u32> = FxHashSet::default();

        let mut free = vec![SimDuration::ZERO; total_cores];
        let mut count = vec![0usize; total_cores];
        let mut total_busy = SimDuration::ZERO;
        let mut last_activity = SimDuration::ZERO;
        let mut recovery = RecoveryCounters::default();
        let mut placements: Vec<TaskPlacement> = Vec::with_capacity(tasks.len());

        // Median base duration, the speculation straggler threshold.
        let median = {
            let mut durs: Vec<SimDuration> = tasks.iter().map(|t| t.duration).collect();
            durs.sort();
            durs.get(durs.len() / 2)
                .copied()
                .unwrap_or(SimDuration::ZERO)
        };

        // Whether a task launched at `start` on this core can begin at all.
        let node_of = |core: usize| core / cores_per_node;
        let usable = |bl: &FxHashSet<u32>,
                      death: &[Option<SimDuration>],
                      core: usize,
                      start: SimDuration| {
            let n = node_of(core);
            !bl.contains(&(n as u32)) && death[n].is_none_or(|d| start < d)
        };

        for (i, t) in tasks.iter().enumerate() {
            let extra = retry_extra.map_or(SimDuration::ZERO, |e| e[i]);
            let mut failures = 0u32;
            let mut launches = 0u32;
            let mut earliest = SimDuration::ZERO; // resubmission delay gate
            let max_launches = plan.max_task_failures + nodes as u32 + 1;

            'attempts: loop {
                launches += 1;
                if failures >= plan.max_task_failures {
                    return Err(FaultError::TaskAborted {
                        partition: i,
                        failures,
                        max_task_failures: plan.max_task_failures,
                    });
                }
                if launches > max_launches {
                    return Err(FaultError::NoHealthyNodes { partition: i });
                }
                if launches > 1 {
                    recovery.task_retries += 1;
                }

                // Core choice: the base scheduler's delay-scheduling rule,
                // restricted to cores whose node is alive at launch time.
                let eff = |free: &[SimDuration], c: usize| free[c].max(earliest);
                let earliest_usable =
                    |free: &[SimDuration], bl: &FxHashSet<u32>, lo: usize, hi: usize| {
                        let mut best: Option<usize> = None;
                        for c in lo..hi {
                            if usable(bl, &death, c, eff(free, c))
                                && best.is_none_or(|b| eff(free, c) < eff(free, b))
                            {
                                best = Some(c);
                            }
                        }
                        best
                    };
                let local = t
                    .preferred_node
                    .map(|n| n.index() * cores_per_node)
                    .and_then(|lo| earliest_usable(&free, &blacklisted, lo, lo + cores_per_node));
                let core = match local {
                    Some(l) if eff(&free, l) <= locality_wait => Some(l),
                    Some(l) => match earliest_usable(&free, &blacklisted, 0, total_cores) {
                        Some(gl) if eff(&free, l) <= eff(&free, gl) => Some(l),
                        other => other,
                    },
                    None => earliest_usable(&free, &blacklisted, 0, total_cores),
                };
                let Some(core) = core else {
                    return Err(FaultError::NoHealthyNodes { partition: i });
                };
                let node = node_of(core);
                let start = eff(&free, core);
                let mut dur = t.duration * slow[node];
                if launches > 1 {
                    dur += extra;
                }
                let end = start + dur;

                // Earliest failure: the node dying mid-attempt, or the
                // seeded crash roll.
                let death_at = death[node].filter(|d| *d < end);
                let crash_at = plan
                    .crash_point(stage_seed, i, launches)
                    .map(|frac| start + dur * frac);
                let fail_at = match (death_at, crash_at) {
                    (Some(d), Some(c)) => Some(d.min(c)),
                    (d, c) => d.or(c),
                };

                if let Some(fail) = fail_at {
                    let is_death = death_at.is_some_and(|d| d <= fail);
                    recovery.task_failures += 1;
                    if !is_death {
                        failures += 1;
                        let nf = node_failures.entry(node as u32).or_insert(0);
                        *nf += 1;
                        // Never blacklist the last node still able to run
                        // tasks — the plan's crashes are cluster-wide, not
                        // evidence against one machine.
                        let healthy_elsewhere = (0..nodes).any(|n| {
                            n != node
                                && !blacklisted.contains(&(n as u32))
                                && death[n].is_none_or(|d| fail < d)
                        });
                        if *nf >= plan.blacklist_after
                            && healthy_elsewhere
                            && blacklisted.insert(node as u32)
                        {
                            recovery.nodes_blacklisted += 1;
                        }
                    }
                    total_busy += fail - start;
                    free[core] = if is_death { far } else { fail };
                    count[core] += 1;
                    last_activity = last_activity.max(fail);
                    earliest = fail + plan.resubmit_delay;
                    continue 'attempts;
                }

                // The attempt will finish. Straggling on a slow node may get
                // a speculative copy on the earliest healthy fast node.
                let mut spec_copy: Option<(usize, SimDuration, SimDuration)> = None;
                if plan.speculation
                    && slow[node] > 1.0
                    && median > SimDuration::ZERO
                    && dur >= median * plan.speculation_multiplier
                {
                    let mut best: Option<usize> = None;
                    for c in 0..total_cores {
                        let n = node_of(c);
                        if n == node || slow[n] > 1.0 {
                            continue;
                        }
                        let s = free[c].max(start);
                        if !usable(&blacklisted, &death, c, s)
                            || death[n].is_some_and(|d| d < s + t.duration)
                        {
                            continue;
                        }
                        if best.is_none_or(|b| s < free[b].max(start)) {
                            best = Some(c);
                        }
                    }
                    if let Some(c) = best {
                        let s = free[c].max(start);
                        if s + t.duration < end {
                            spec_copy = Some((c, s, t.duration));
                            recovery.speculative_launched += 1;
                        }
                    }
                }

                match spec_copy {
                    Some((copy_core, copy_start, copy_dur)) => {
                        let copy_end = copy_start + copy_dur;
                        // First finisher wins; the loser is killed then.
                        recovery.speculative_wins += 1;
                        placements.push(TaskPlacement {
                            node: NodeId(node_of(copy_core) as u32),
                            core: copy_core % cores_per_node,
                            start: copy_start,
                            duration: copy_dur,
                        });
                        free[copy_core] = copy_end;
                        free[core] = copy_end; // original killed at copy finish
                        count[copy_core] += 1;
                        count[core] += 1;
                        total_busy += copy_dur + (copy_end - start);
                        last_activity = last_activity.max(copy_end);
                    }
                    None => {
                        placements.push(TaskPlacement {
                            node: NodeId(node as u32),
                            core: core % cores_per_node,
                            start,
                            duration: dur,
                        });
                        free[core] = end;
                        count[core] += 1;
                        total_busy += dur;
                        last_activity = last_activity.max(end);
                    }
                }
                break 'attempts;
            }
        }

        let waves = count.iter().copied().max().unwrap_or(0);
        // Killing the congested data-local node can accidentally "improve"
        // placement (its queue evaporates and delay scheduling stops
        // waiting for it). Real recovery never beats the healthy plan — the
        // survivors still have to re-fetch everything the dead node held —
        // so the fault-free makespan is a floor on stage time.
        let healthy_floor = scheduler.schedule_detailed(tasks).outcome.makespan;
        Ok(FaultySchedule {
            schedule: DetailedSchedule {
                outcome: ScheduleOutcome {
                    makespan: last_activity.max(healthy_floor),
                    total_busy,
                    tasks: tasks.len(),
                    waves,
                },
                placements,
            },
            recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, GIB};

    fn sched(nodes: u32, cores: u32) -> VirtualScheduler {
        VirtualScheduler::new(ClusterSpec::new(nodes, cores, GIB))
    }

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn uniform(n: usize, dur: f64) -> Vec<TaskSpec> {
        (0..n).map(|_| TaskSpec::anywhere(secs(dur))).collect()
    }

    #[test]
    fn inert_plan_matches_plain_scheduler() {
        let s = sched(3, 2);
        let tasks: Vec<TaskSpec> = (0..17)
            .map(|i| {
                if i % 3 == 0 {
                    TaskSpec::local(secs(0.1 * (i % 5 + 1) as f64), NodeId(i as u32 % 3))
                } else {
                    TaskSpec::anywhere(secs(0.1 * (i % 5 + 1) as f64))
                }
            })
            .collect();
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(7)); // enabled but inert
        let faulty = fc
            .schedule_stage(&s, &tasks, None, SimInstant::EPOCH)
            .expect("inert plan cannot abort");
        let base = s.schedule_detailed(&tasks);
        assert_eq!(faulty.schedule.outcome, base.outcome);
        assert_eq!(faulty.schedule.placements, base.placements);
        assert!(!faulty.recovery.any());
    }

    #[test]
    fn crashes_are_retried_and_counted() {
        let s = sched(2, 2);
        let fc = FaultController::new();
        fc.set_plan(
            FaultPlan::seeded(11)
                .crash_tasks(0.4)
                .with_max_task_failures(10),
        );
        let out = fc
            .schedule_stage(&s, &uniform(40, 1.0), None, SimInstant::EPOCH)
            .expect("40% crash rate stays well under a 10-attempt budget");
        assert!(out.recovery.task_failures > 0, "{:?}", out.recovery);
        assert_eq!(out.recovery.task_failures, out.recovery.task_retries);
        // Failed attempt time counts as busy time on top of the real work.
        assert!(out.schedule.outcome.total_busy > secs(40.0));
        assert_eq!(out.schedule.placements.len(), 40);
    }

    #[test]
    fn crash_decisions_are_deterministic() {
        let run = |seed| {
            let fc = FaultController::new();
            fc.set_plan(
                FaultPlan::seeded(seed)
                    .crash_tasks(0.3)
                    .with_max_task_failures(10),
            );
            let out = fc
                .schedule_stage(&sched(2, 2), &uniform(30, 1.0), None, SimInstant::EPOCH)
                .expect("under budget");
            (out.recovery, out.schedule.outcome)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0, "different seeds crash differently");
    }

    #[test]
    fn certain_crash_aborts_with_descriptive_error() {
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(1).crash_tasks(1.0));
        let err = fc
            .schedule_stage(&sched(2, 2), &uniform(3, 1.0), None, SimInstant::EPOCH)
            .expect_err("every attempt crashes");
        match &err {
            FaultError::TaskAborted {
                failures,
                max_task_failures,
                ..
            } => {
                assert_eq!(*failures, *max_task_failures);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("max_task_failures"));
    }

    #[test]
    fn dead_node_takes_no_tasks() {
        let s = sched(2, 1);
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(0), SimInstant::EPOCH));
        let out = fc
            .schedule_stage(&s, &uniform(4, 1.0), None, SimInstant::EPOCH)
            .expect("node 1 survives");
        assert!(out.schedule.placements.iter().all(|p| p.node == NodeId(1)));
        assert_eq!(out.schedule.outcome.makespan, secs(4.0));
    }

    #[test]
    fn mid_stage_death_fails_running_attempts() {
        let s = sched(2, 1);
        let fc = FaultController::new();
        // Node 0 dies half-way through the first wave.
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(0), SimInstant::from_secs(0.5)));
        let out = fc
            .schedule_stage(&s, &uniform(2, 1.0), None, SimInstant::EPOCH)
            .expect("node 1 survives");
        assert_eq!(out.recovery.task_failures, 1);
        assert_eq!(out.recovery.task_retries, 1);
        assert!(out.schedule.placements.iter().all(|p| p.node == NodeId(1)));
        // The retry waits for the resubmission delay and node 1's queue.
        assert!(out.schedule.outcome.makespan > secs(1.0));
    }

    #[test]
    fn all_nodes_dead_is_an_error() {
        let fc = FaultController::new();
        fc.set_plan(
            FaultPlan::seeded(0)
                .lose_node_at(NodeId(0), SimInstant::EPOCH)
                .lose_node_at(NodeId(1), SimInstant::EPOCH),
        );
        let err = fc
            .schedule_stage(&sched(2, 2), &uniform(2, 1.0), None, SimInstant::EPOCH)
            .expect_err("nowhere to run");
        assert!(matches!(err, FaultError::NoHealthyNodes { .. }));
        assert!(err.to_string().contains("dead or blacklisted"));
    }

    #[test]
    fn repeated_failures_blacklist_the_node() {
        let s = sched(4, 1);
        let fc = FaultController::new();
        fc.set_plan(
            FaultPlan::seeded(3)
                .crash_tasks(0.5)
                .with_blacklist_after(2)
                .with_max_task_failures(20),
        );
        let mut total = RecoveryCounters::default();
        for _ in 0..6 {
            let out = fc
                .schedule_stage(&s, &uniform(16, 1.0), None, SimInstant::EPOCH)
                .expect("budget of 10 is generous");
            total.merge(&out.recovery);
        }
        assert!(total.nodes_blacklisted > 0, "{total:?}");
    }

    #[test]
    fn slow_node_stretches_tasks_and_speculation_rescues_them() {
        let s = sched(4, 1);
        let tasks = uniform(4, 1.0);
        let base = FaultPlan::seeded(0).slow_node(NodeId(0), 10.0);

        let fc_slow = FaultController::new();
        fc_slow.set_plan(base.clone());
        let slow = fc_slow
            .schedule_stage(&s, &tasks, None, SimInstant::EPOCH)
            .expect("no crashes");
        assert_eq!(slow.schedule.outcome.makespan, secs(10.0), "straggler");

        let fc_spec = FaultController::new();
        fc_spec.set_plan(base.with_speculation());
        let spec = fc_spec
            .schedule_stage(&s, &tasks, None, SimInstant::EPOCH)
            .expect("no crashes");
        assert!(spec.recovery.speculative_launched >= 1);
        assert_eq!(
            spec.recovery.speculative_wins,
            spec.recovery.speculative_launched
        );
        assert!(
            spec.schedule.outcome.makespan < slow.schedule.outcome.makespan,
            "speculative copy beats the straggler: {:?} vs {:?}",
            spec.schedule.outcome.makespan,
            slow.schedule.outcome.makespan
        );
        // The winning placement is on a fast node.
        assert!(spec.schedule.placements.iter().all(|p| p.node != NodeId(0)));
    }

    #[test]
    fn retry_extra_charges_reread_on_retries_only() {
        let s = sched(2, 1);
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(0), SimInstant::from_secs(0.5)));
        let tasks = vec![
            TaskSpec::local(secs(1.0), NodeId(0)),
            TaskSpec::local(secs(1.0), NodeId(1)),
        ];
        let extras = vec![secs(5.0), secs(5.0)];
        let out = fc
            .schedule_stage(&s, &tasks, Some(&extras), SimInstant::EPOCH)
            .expect("node 1 survives");
        // Task 0 failed at 0.5s, retried on node 1 with the 5s re-read.
        let retried = &out.schedule.placements[0];
        assert_eq!(retried.node, NodeId(1));
        assert_eq!(retried.duration, secs(6.0));
        // Task 1 never failed: no extra.
        assert_eq!(out.schedule.placements[1].duration, secs(1.0));
    }

    #[test]
    fn manual_kill_and_queries() {
        let fc = FaultController::new();
        assert!(!fc.active());
        assert!(fc.kill_node(NodeId(2), SimInstant::from_secs(1.0)));
        assert!(
            !fc.kill_node(NodeId(2), SimInstant::from_secs(2.0)),
            "already dead"
        );
        assert!(fc.active());
        assert!(fc.dead_nodes(SimInstant::EPOCH).is_empty());
        assert_eq!(fc.dead_nodes(SimInstant::from_secs(1.0)), vec![NodeId(2)]);
        // Manual kills are pre-applied: the engine already invalidated data.
        assert!(fc.take_new_losses(SimInstant::from_secs(5.0)).is_empty());
    }

    #[test]
    fn planned_losses_surface_exactly_once() {
        let fc = FaultController::new();
        fc.set_plan(FaultPlan::seeded(0).lose_node_at(NodeId(1), SimInstant::from_secs(2.0)));
        assert!(fc.take_new_losses(SimInstant::from_secs(1.0)).is_empty());
        assert_eq!(
            fc.take_new_losses(SimInstant::from_secs(3.0)),
            vec![NodeId(1)]
        );
        assert!(fc.take_new_losses(SimInstant::from_secs(4.0)).is_empty());
        assert_eq!(fc.dead_nodes(SimInstant::from_secs(4.0)), vec![NodeId(1)]);
    }
}
