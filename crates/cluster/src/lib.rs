//! # yafim-cluster — deterministic virtual-cluster substrate
//!
//! The YAFIM paper evaluates on a 12-node Hadoop/Spark cluster. This crate is
//! the stand-in for that hardware: a *virtual* cluster whose time is computed
//! from deterministic work counters through a calibrated cost model, while the
//! actual data processing runs for real on local threads.
//!
//! The split is deliberate:
//!
//! * **Correctness is real.** Every byte of every dataset is actually parsed,
//!   hashed, counted and shuffled by the engines built on top of this crate
//!   ([`yafim-rdd`](https://docs.rs), [`yafim-mapreduce`](https://docs.rs)).
//! * **Time is virtual.** Each task accumulates [`work::WorkCounters`]
//!   (records, CPU units, bytes from disk / memory / network); a
//!   [`costmodel::CostModel`] converts counters into a virtual duration; and
//!   [`sched::VirtualScheduler`] list-schedules task durations onto
//!   `nodes × cores` virtual cores to obtain a stage makespan.
//!
//! Because counters are exact functions of the data and the scheduler is
//! deterministic, experiment output is bit-for-bit reproducible on any host.
//!
//! Modules:
//!
//! * [`time`] — virtual time arithmetic ([`time::SimDuration`], [`time::SimInstant`]).
//! * [`spec`] — cluster topology ([`spec::ClusterSpec`], [`spec::NodeId`]).
//! * [`costmodel`] — calibrated constants ([`costmodel::CostModel`]).
//! * [`work`] — per-task work counters.
//! * [`sched`] — the virtual list scheduler.
//! * [`fault`] — seeded fault injection (crashes, node loss, stragglers) and
//!   Spark-style recovery scheduling (retries, blacklisting, speculation).
//! * [`hdfs`] — simulated HDFS with real file contents, blocks and replicas.
//! * [`metrics`] — the virtual clock, counters and the span log (job →
//!   stage → task) shared by engines.
//! * [`registry`] — typed named metrics (counters, gauges, log-bucketed
//!   histograms) fed by the engines' hot paths.
//! * [`critical`] — critical-path analysis: decompose the makespan into
//!   exhaustive attribution buckets plus per-stage skew metrics.
//! * [`manifest`] — versioned machine-readable run manifests for the
//!   bench-regression gate.
//! * [`trace`] — Chrome trace event exporter (Perfetto / chrome://tracing).
//! * [`report`] — Spark-UI-style per-stage and per-iteration text tables.
//! * [`pool`] — the real worker thread pool used to execute tasks.

pub mod bytes;
pub mod costmodel;
pub mod critical;
pub mod fault;
pub mod hash;
pub mod hdfs;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod report;
pub mod sched;
pub mod spec;
pub mod sync;
pub mod time;
pub mod trace;
pub mod work;

pub use bytes::{slice_bytes, ByteSize};
pub use costmodel::CostModel;
pub use critical::{critical_path, CriticalPathBuckets, CriticalPathReport, StageSkew};
pub use fault::{
    FaultController, FaultError, FaultPlan, FaultySchedule, IntegrityCounters, IntegrityTier,
    RecoveryCounters, TransientKind, TransientOutcome, DEFAULT_BLACKLIST_AFTER,
    DEFAULT_FETCH_BACKOFF_BASE, DEFAULT_FETCH_RETRIES, DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MAX_TASK_FAILURES, DEFAULT_RESUBMIT_DELAY, DEFAULT_SPECULATION_MULTIPLIER,
};
pub use hash::{bucket_of, fx_hash64, FxHashMap, FxHashSet, FxHasher};
pub use hdfs::{BlockInfo, CheckpointBlock, DfsError, DfsFile, SimHdfs, Split};
pub use manifest::{RunManifest, MANIFEST_SCHEMA_VERSION};
pub use metrics::{
    DropCounts, Event, EventKind, JobSpan, Metrics, MetricsCapacity, MetricsSnapshot,
    StageExecution, StageSpan, TaskExecution, TaskSpan,
};
pub use pool::ThreadPool;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use report::{full_report, iteration_report, stage_report};
pub use sched::{
    DetailedSchedule, HeartbeatMonitor, ScheduleOutcome, TaskPlacement, TaskSpec, VirtualScheduler,
};
pub use spec::{ClusterSpec, NodeId};
pub use time::{SimDuration, SimInstant};
pub use trace::chrome_trace;
pub use work::{TaskProfile, WorkCounters};

use std::sync::Arc;

/// A handle bundling everything that describes one virtual cluster: its
/// topology, its cost model, its distributed file system, the shared metrics
/// sink, and the real thread pool used to execute tasks.
///
/// Engines (`yafim-rdd`, `yafim-mapreduce`) are constructed over a
/// `SimCluster` and charge all their virtual time to its [`Metrics`].
#[derive(Clone)]
pub struct SimCluster {
    inner: Arc<ClusterInner>,
}

struct ClusterInner {
    spec: ClusterSpec,
    cost: CostModel,
    hdfs: SimHdfs,
    metrics: Metrics,
    registry: MetricsRegistry,
    pool: ThreadPool,
    faults: FaultController,
}

impl SimCluster {
    /// Create a cluster with the given topology and cost model.
    ///
    /// The real thread pool is sized to the host's parallelism (not the
    /// virtual core count): virtual cores only exist inside the scheduler.
    pub fn new(spec: ClusterSpec, cost: CostModel) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_threads(spec, cost, threads)
    }

    /// Like [`SimCluster::new`] but with an explicit real-thread count
    /// (useful in tests to force sequential execution).
    pub fn with_threads(spec: ClusterSpec, cost: CostModel, threads: usize) -> Self {
        let hdfs = SimHdfs::new(spec.clone(), cost.clone());
        SimCluster {
            inner: Arc::new(ClusterInner {
                spec,
                cost,
                hdfs,
                metrics: Metrics::new(),
                registry: MetricsRegistry::new(),
                pool: ThreadPool::new(threads.max(1)),
                faults: FaultController::new(),
            }),
        }
    }

    /// The cluster used throughout the paper: 12 nodes, two quad-core Xeons
    /// each (8 cores/node, 96 cores total), 24 GB memory per node.
    pub fn paper_cluster() -> Self {
        Self::new(ClusterSpec::paper(), CostModel::hadoop_era())
    }

    /// Cluster topology.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// Cost model used for all virtual-time conversions.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The simulated distributed file system.
    pub fn hdfs(&self) -> &SimHdfs {
        &self.inner.hdfs
    }

    /// Shared metrics sink (virtual clock, counters, event log).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Typed metrics registry (named counters, gauges, histograms) fed by
    /// the engines' executor, shuffle, cache and fault paths.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// The real thread pool tasks execute on.
    pub fn pool(&self) -> &ThreadPool {
        &self.inner.pool
    }

    /// Fault injection controller (inert until a [`FaultPlan`] is set or a
    /// node is killed).
    pub fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    /// Convenience: a fresh [`VirtualScheduler`] for this cluster's topology.
    pub fn scheduler(&self) -> VirtualScheduler {
        VirtualScheduler::new(self.inner.spec.clone())
    }
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("spec", &self.inner.spec)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_topology() {
        let c = SimCluster::paper_cluster();
        assert_eq!(c.spec().nodes, 12);
        assert_eq!(c.spec().cores_per_node, 8);
        assert_eq!(c.spec().total_cores(), 96);
    }

    #[test]
    fn cluster_is_cheaply_cloneable() {
        let c = SimCluster::paper_cluster();
        let c2 = c.clone();
        c.metrics().advance(SimDuration::from_secs(1.0));
        // Clones share the same metrics sink.
        assert_eq!(c2.metrics().now().as_secs(), 1.0);
    }
}
