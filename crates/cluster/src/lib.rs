//! # yafim-cluster — deterministic virtual-cluster substrate
//!
//! The YAFIM paper evaluates on a 12-node Hadoop/Spark cluster. This crate is
//! the stand-in for that hardware: a *virtual* cluster whose time is computed
//! from deterministic work counters through a calibrated cost model, while the
//! actual data processing runs for real on local threads.
//!
//! The split is deliberate:
//!
//! * **Correctness is real.** Every byte of every dataset is actually parsed,
//!   hashed, counted and shuffled by the engines built on top of this crate
//!   ([`yafim-rdd`](https://docs.rs), [`yafim-mapreduce`](https://docs.rs)).
//! * **Time is virtual.** Each task accumulates [`work::WorkCounters`]
//!   (records, CPU units, bytes from disk / memory / network); a
//!   [`costmodel::CostModel`] converts counters into a virtual duration; and
//!   [`sched::VirtualScheduler`] list-schedules task durations onto
//!   `nodes × cores` virtual cores to obtain a stage makespan.
//!
//! Because counters are exact functions of the data and the scheduler is
//! deterministic, experiment output is bit-for-bit reproducible on any host.
//!
//! Modules:
//!
//! * [`time`] — virtual time arithmetic ([`time::SimDuration`], [`time::SimInstant`]).
//! * [`spec`] — cluster topology ([`spec::ClusterSpec`], [`spec::NodeId`]).
//! * [`costmodel`] — calibrated constants ([`costmodel::CostModel`]).
//! * [`work`] — per-task work counters.
//! * [`sched`] — the virtual list scheduler.
//! * [`fault`] — seeded fault injection (crashes, node loss, stragglers) and
//!   Spark-style recovery scheduling (retries, blacklisting, speculation).
//! * [`hdfs`] — simulated HDFS with real file contents, blocks and replicas.
//! * [`metrics`] — the virtual clock, counters and the span log (job →
//!   stage → task) shared by engines.
//! * [`registry`] — typed named metrics (counters, gauges, log-bucketed
//!   histograms) fed by the engines' hot paths.
//! * [`critical`] — critical-path analysis: decompose the makespan into
//!   exhaustive attribution buckets plus per-stage skew metrics.
//! * [`manifest`] — versioned machine-readable run manifests for the
//!   bench-regression gate.
//! * [`memgov`] — the unified execution-memory governor: region split,
//!   per-task budgets, OOM injection and the graceful-degradation ladder.
//! * [`trace`] — Chrome trace event exporter (Perfetto / chrome://tracing).
//! * [`report`] — Spark-UI-style per-stage and per-iteration text tables.
//! * [`pool`] — the real worker thread pool used to execute tasks.

pub mod bytes;
pub mod costmodel;
pub mod critical;
pub mod fault;
pub mod hash;
pub mod hdfs;
pub mod jobs;
pub mod json;
pub mod manifest;
pub mod memgov;
pub mod metrics;
pub mod pool;
pub mod registry;
pub mod report;
pub mod sched;
pub mod spec;
pub mod sync;
pub mod time;
pub mod trace;
pub mod work;

pub use bytes::{slice_bytes, ByteSize};
pub use costmodel::CostModel;
pub use critical::{critical_path, CriticalPathBuckets, CriticalPathReport, StageSkew};
pub use fault::{
    FaultController, FaultError, FaultPlan, FaultySchedule, IntegrityCounters, IntegrityTier,
    MemoryCounters, RecoveryCounters, TransientKind, TransientOutcome, DEFAULT_BLACKLIST_AFTER,
    DEFAULT_FETCH_BACKOFF_BASE, DEFAULT_FETCH_RETRIES, DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MAX_TASK_FAILURES, DEFAULT_RESUBMIT_DELAY, DEFAULT_SPECULATION_MULTIPLIER,
};
pub use hash::{bucket_of, fx_hash64, FxHashMap, FxHashSet, FxHasher};
pub use hdfs::{BlockInfo, CheckpointBlock, DfsError, DfsFile, SimHdfs, Split};
pub use jobs::{
    JobId, JobQueue, JobTicket, PoolPolicy, PoolSpec, SchedulerConfig, SharedBlacklist,
};
pub use manifest::{RunManifest, MANIFEST_SCHEMA_VERSION};
pub use memgov::{
    storage_capacity, MemEffect, MemGrant, MemoryBudget, MemoryRefusal, OomAbort, TaskMemory,
    SPILL_GRANULE,
};
pub use metrics::{
    DropCounts, Event, EventKind, JobSpan, Metrics, MetricsCapacity, MetricsSnapshot,
    StageExecution, StageSpan, TaskExecution, TaskSpan,
};
pub use pool::ThreadPool;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use report::{full_report, iteration_report, stage_report};
pub use sched::{
    DetailedSchedule, HeartbeatMonitor, ScheduleOutcome, TaskPlacement, TaskSpec, VirtualScheduler,
};
pub use spec::{ClusterSpec, NodeId};
pub use time::{SimDuration, SimInstant};
pub use trace::chrome_trace;
pub use work::{TaskProfile, WorkCounters};

use std::sync::Arc;

/// A handle bundling everything that describes one virtual cluster: its
/// topology, its cost model, its distributed file system, the shared metrics
/// sink, and the real thread pool used to execute tasks.
///
/// Engines (`yafim-rdd`, `yafim-mapreduce`) are constructed over a
/// `SimCluster` and charge all their virtual time to its [`Metrics`].
#[derive(Clone)]
pub struct SimCluster {
    inner: Arc<ClusterInner>,
}

struct ClusterInner {
    spec: ClusterSpec,
    cost: CostModel,
    hdfs: SimHdfs,
    metrics: Metrics,
    registry: MetricsRegistry,
    pool: ThreadPool,
    faults: FaultController,
    sched: sync::Mutex<SchedState>,
}

/// Mutable multi-job scheduler state for one cluster (= one job's view).
struct SchedState {
    config: SchedulerConfig,
    /// Ticket binding this cluster to a job in a shared [`JobQueue`].
    /// Unbound clusters behave exactly as before the multi-job scheduler:
    /// full topology, no queue time.
    binding: Option<JobTicket>,
    /// FIFO queue time not yet charged to a stage (charged once, on the
    /// first stage admitted after binding).
    queue_pending: SimDuration,
    /// When the dynamic-allocation ramp last (re)started.
    ramp_start: SimInstant,
    /// End of the most recently recorded stage (virtual time).
    last_stage_end: SimInstant,
    /// Whether any stage has been admitted yet.
    ran_stage: bool,
    /// Executors (nodes) currently held under dynamic allocation.
    executors_now: usize,
    /// Per-task durations of the previous stage in each label family —
    /// the "prior pass" estimates skew-aware splitting decides from.
    skew_history: std::collections::HashMap<(String, usize), Vec<f64>>,
}

impl SchedState {
    fn new() -> Self {
        SchedState {
            config: SchedulerConfig::default(),
            binding: None,
            queue_pending: SimDuration::ZERO,
            ramp_start: SimInstant::EPOCH,
            last_stage_end: SimInstant::EPOCH,
            ran_stage: false,
            executors_now: 0,
            skew_history: std::collections::HashMap::new(),
        }
    }
}

impl SimCluster {
    /// Create a cluster with the given topology and cost model.
    ///
    /// The real thread pool is sized to the host's parallelism (not the
    /// virtual core count): virtual cores only exist inside the scheduler.
    pub fn new(spec: ClusterSpec, cost: CostModel) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_threads(spec, cost, threads)
    }

    /// Like [`SimCluster::new`] but with an explicit real-thread count
    /// (useful in tests to force sequential execution).
    pub fn with_threads(spec: ClusterSpec, cost: CostModel, threads: usize) -> Self {
        let hdfs = SimHdfs::new(spec.clone(), cost.clone());
        SimCluster {
            inner: Arc::new(ClusterInner {
                spec,
                cost,
                hdfs,
                metrics: Metrics::new(),
                registry: MetricsRegistry::new(),
                pool: ThreadPool::new(threads.max(1)),
                faults: FaultController::new(),
                sched: sync::Mutex::new(SchedState::new()),
            }),
        }
    }

    /// The cluster used throughout the paper: 12 nodes, two quad-core Xeons
    /// each (8 cores/node, 96 cores total), 24 GB memory per node.
    pub fn paper_cluster() -> Self {
        Self::new(ClusterSpec::paper(), CostModel::hadoop_era())
    }

    /// Cluster topology.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// Cost model used for all virtual-time conversions.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The simulated distributed file system.
    pub fn hdfs(&self) -> &SimHdfs {
        &self.inner.hdfs
    }

    /// Shared metrics sink (virtual clock, counters, event log).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Typed metrics registry (named counters, gauges, histograms) fed by
    /// the engines' executor, shuffle, cache and fault paths.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// The real thread pool tasks execute on.
    pub fn pool(&self) -> &ThreadPool {
        &self.inner.pool
    }

    /// Fault injection controller (inert until a [`FaultPlan`] is set or a
    /// node is killed).
    pub fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    /// The execution-memory budget the governor enforces for this cluster,
    /// or `None` when the installed fault plan does not arm it (no
    /// `oom_prob`, no `mem_budget_override`) — the inert path charges and
    /// counts nothing, keeping unconstrained runs byte-identical.
    pub fn memory_budget(&self) -> Option<MemoryBudget> {
        if !self.inner.faults.active() {
            return None;
        }
        let plan = self.inner.faults.plan();
        let fraction = self.inner.sched.lock().config.storage_fraction;
        MemoryBudget::from_plan(&self.inner.spec, fraction, &self.inner.cost, &plan)
    }

    /// Convenience: a fresh [`VirtualScheduler`] for this cluster's current
    /// view of the topology — the bound job's executor grant (full cluster
    /// when unbound) and the configured locality wait.
    pub fn scheduler(&self) -> VirtualScheduler {
        let st = self.inner.sched.lock();
        let (lo, count) = match &st.binding {
            Some(t) => t.grant(),
            None => (0, self.inner.spec.nodes as usize),
        };
        VirtualScheduler::with_slice(
            self.inner.spec.clone(),
            SimDuration::from_secs(st.config.locality_wait),
            lo,
            count,
        )
    }

    /// Replace the scheduler configuration (locality wait, dynamic
    /// allocation, skew splitting). Takes effect on the next admission.
    pub fn set_scheduler_config(&self, config: SchedulerConfig) {
        self.inner.sched.lock().config = config;
    }

    /// Current scheduler configuration.
    pub fn scheduler_config(&self) -> SchedulerConfig {
        self.inner.sched.lock().config.clone()
    }

    /// Bind this cluster to a job in a shared [`JobQueue`]. Blocks until
    /// the job may start (immediately for fair pools; FIFO jobs wait for
    /// their predecessors), charges any FIFO queue time to the first stage,
    /// restricts every subsequent scheduler to the job's executor grant,
    /// and wires the queue's shared blacklist into fault handling.
    pub fn attach_job(&self, ticket: &JobTicket) {
        let offset = ticket.await_start();
        {
            let mut st = self.inner.sched.lock();
            st.binding = Some(ticket.clone());
            st.queue_pending = offset;
        }
        self.inner
            .faults
            .set_shared_blacklist(ticket.queue().shared_blacklist().clone(), ticket.id());
    }

    /// Acquire a job slot in `pool` for engine `name`. The returned guard
    /// attributes the job to per-pool counters and, if the cluster is bound
    /// to a [`JobQueue`] ticket, reports completion (at the final virtual
    /// time) when dropped — including on panic, so FIFO successors and the
    /// shared blacklist never wedge on a failed job. A bound cluster hosts
    /// one logical job; only the first completion report counts.
    pub fn acquire_job(&self, pool: &str, name: &str) -> JobGuard {
        let r = &self.inner.registry;
        r.counter("sched.jobs_submitted").inc(1);
        r.counter(&format!("sched.pool.{pool}.jobs")).inc(1);
        let _ = name;
        JobGuard {
            cluster: self.clone(),
        }
    }

    /// Admit one stage: returns the queue time to charge to it (non-zero
    /// only on a FIFO job's first stage) and the scheduler to place it
    /// with — restricted to the job's grant and, under dynamic allocation,
    /// to the currently ramped executor count.
    pub fn stage_admission(&self) -> (SimDuration, VirtualScheduler) {
        let mut st = self.inner.sched.lock();
        let now = self.inner.metrics.now();
        let (lo, full) = match &st.binding {
            Some(t) => t.grant(),
            None => (0, self.inner.spec.nodes as usize),
        };
        let wait = SimDuration::from_secs(st.config.locality_wait);
        let queue = std::mem::replace(&mut st.queue_pending, SimDuration::ZERO);
        let count = if st.config.ramp_interval > 0.0 {
            if !st.ran_stage {
                st.ramp_start = now;
            } else if st.config.executor_idle_timeout > 0.0
                && now.since(st.last_stage_end).as_secs() > st.config.executor_idle_timeout
                && st.executors_now > (st.config.initial_executors.max(1) as usize).min(full)
            {
                // The job went idle long enough to release its ramped
                // executors; start growing again from the initial count.
                st.ramp_start = now;
                self.inner.registry.counter("sched.idle_releases").inc(1);
            }
            let steps = (now.since(st.ramp_start).as_secs() / st.config.ramp_interval) as u32;
            let mut active = (st.config.initial_executors.max(1) as usize).min(full);
            for _ in 0..steps {
                if active >= full {
                    break;
                }
                active = (active * 2).min(full);
            }
            if st.ran_stage && active > st.executors_now {
                self.inner.registry.counter("sched.ramp_ups").inc(1);
            }
            st.executors_now = active;
            active
        } else {
            st.executors_now = full;
            full
        };
        (
            queue,
            VirtualScheduler::with_slice(self.inner.spec.clone(), wait, lo, count),
        )
    }

    /// Decide skew-aware splits for a stage about to be scheduled. The
    /// *previous* stage in the same label family (same shape: equal task
    /// count) supplies per-task duration estimates; any task whose estimate
    /// exceeds `skew_threshold × median(estimates)` is split into
    /// `min(ceil(estimate / median), max_skew_splits)` equal pieces for
    /// placement, so a straggler partition occupies several cores instead
    /// of setting the stage makespan alone. Returns one split count per
    /// task (`1` = unsplit). Always records the current durations as the
    /// next pass's estimates; with `skew_threshold == 0` (the default) the
    /// feature is off and every count is 1.
    pub fn plan_skew_splits(&self, family: &str, durations: &[SimDuration]) -> Vec<usize> {
        let mut st = self.inner.sched.lock();
        let threshold = st.config.skew_threshold;
        let max_splits = st.config.max_skew_splits.max(2) as usize;
        let prior = st.skew_history.insert(
            (family.to_string(), durations.len()),
            durations.iter().map(|d| d.as_secs()).collect(),
        );
        let unsplit = vec![1usize; durations.len()];
        if threshold <= 0.0 || durations.len() < 2 {
            return unsplit;
        }
        let Some(est) = prior else { return unsplit };
        let mut sorted = est.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        if median <= 0.0 {
            return unsplit;
        }
        est.iter()
            .map(|&e| {
                if e > threshold * median {
                    ((e / median).ceil() as usize).clamp(2, max_splits)
                } else {
                    1
                }
            })
            .collect()
    }

    /// Record one admitted stage's scheduler-side observability: its queue
    /// wait, the placement decision units spent, shared-blacklist hits and
    /// skew splits. Also touches every `sched.*` metric so manifests carry
    /// a stable name set whether or not the features fired.
    pub fn record_sched_stage(
        &self,
        queue: SimDuration,
        decision_units: u64,
        shared_hits: u64,
        skew_splits: u64,
    ) {
        let r = &self.inner.registry;
        r.counter("sched.stages_admitted").inc(1);
        r.counter("sched.decision_units").inc(decision_units);
        r.counter("sched.blacklist_shared_hits").inc(shared_hits);
        r.counter("sched.skew_splits").inc(skew_splits);
        r.counter("sched.ramp_ups").inc(0);
        r.counter("sched.idle_releases").inc(0);
        r.counter("sched.jobs_submitted").inc(0);
        r.counter("sched.jobs_completed").inc(0);
        r.histogram("sched.queue_wait_seconds")
            .observe(queue.as_secs());
        let mut st = self.inner.sched.lock();
        st.ran_stage = true;
        st.last_stage_end = self.inner.metrics.now();
        let execs = st.executors_now;
        drop(st);
        r.gauge("sched.executors_granted").set(execs as f64);
    }
}

/// RAII guard for one job acquired via [`SimCluster::acquire_job`].
pub struct JobGuard {
    cluster: SimCluster,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        let c = &self.cluster;
        c.registry().counter("sched.jobs_completed").inc(1);
        let ticket = c.inner.sched.lock().binding.clone();
        if let Some(t) = ticket {
            t.complete(c.metrics().now().since(SimInstant::EPOCH));
        }
    }
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("spec", &self.inner.spec)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_topology() {
        let c = SimCluster::paper_cluster();
        assert_eq!(c.spec().nodes, 12);
        assert_eq!(c.spec().cores_per_node, 8);
        assert_eq!(c.spec().total_cores(), 96);
    }

    #[test]
    fn default_config_admits_the_full_cluster_with_no_queue() {
        let c = SimCluster::paper_cluster();
        let (queue, sched) = c.stage_admission();
        assert_eq!(queue, SimDuration::ZERO);
        assert_eq!(sched.node_slice(), (0, 12));
        assert_eq!(sched.locality_wait(), SimDuration::from_secs(0.3));
    }

    #[test]
    fn dynamic_allocation_ramps_executors_up_over_virtual_time() {
        let c = SimCluster::paper_cluster();
        c.set_scheduler_config(SchedulerConfig {
            ramp_interval: 1.0,
            initial_executors: 1,
            ..SchedulerConfig::default()
        });
        let (_, s0) = c.stage_admission();
        assert_eq!(s0.node_slice().1, 1, "ramp starts from initial_executors");
        c.record_sched_stage(SimDuration::ZERO, 0, 0, 0);
        c.metrics().advance(SimDuration::from_secs(2.5));
        let (_, s1) = c.stage_admission();
        // Two full ramp intervals elapsed: 1 → 2 → 4 executors.
        assert_eq!(s1.node_slice().1, 4);
        c.record_sched_stage(SimDuration::ZERO, 0, 0, 0);
        assert!(c.registry().counter("sched.ramp_ups").get() >= 1);
        c.metrics().advance(SimDuration::from_secs(60.0));
        c.set_scheduler_config(SchedulerConfig {
            ramp_interval: 1.0,
            initial_executors: 1,
            executor_idle_timeout: 10.0,
            ..SchedulerConfig::default()
        });
        let (_, s2) = c.stage_admission();
        // Idle past the timeout: ramped executors released, growth restarts.
        assert_eq!(s2.node_slice().1, 1);
        assert_eq!(c.registry().counter("sched.idle_releases").get(), 1);
    }

    #[test]
    fn skew_splits_come_from_prior_pass_estimates() {
        let c = SimCluster::paper_cluster();
        c.set_scheduler_config(SchedulerConfig {
            skew_threshold: 2.0,
            max_skew_splits: 4,
            ..SchedulerConfig::default()
        });
        let durs: Vec<SimDuration> = [1.0, 1.0, 1.0, 10.0]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .collect();
        // First pass: no history yet, nothing splits.
        assert_eq!(c.plan_skew_splits("pass", &durs), vec![1, 1, 1, 1]);
        // Second pass: the 10s straggler is 10× the 1s median → capped split.
        assert_eq!(c.plan_skew_splits("pass", &durs), vec![1, 1, 1, 4]);
        // A different family (or shape) has its own history.
        assert_eq!(c.plan_skew_splits("other", &durs), vec![1, 1, 1, 1]);
    }

    #[test]
    fn default_config_never_splits() {
        let c = SimCluster::paper_cluster();
        let durs: Vec<SimDuration> = [1.0, 100.0]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .collect();
        assert_eq!(c.plan_skew_splits("f", &durs), vec![1, 1]);
        assert_eq!(c.plan_skew_splits("f", &durs), vec![1, 1]);
    }

    #[test]
    fn job_guard_reports_completion_once() {
        let c = SimCluster::paper_cluster();
        let q = JobQueue::new(c.spec().nodes);
        let t = q.submit("default", "job");
        c.attach_job(&t);
        {
            let _g = c.acquire_job("default", "yafim");
        }
        assert_eq!(q.jobs_completed(), 1);
        assert_eq!(c.registry().counter("sched.jobs_submitted").get(), 1);
        assert_eq!(c.registry().counter("sched.jobs_completed").get(), 1);
        assert_eq!(c.registry().counter("sched.pool.default.jobs").get(), 1);
    }

    #[test]
    fn cluster_is_cheaply_cloneable() {
        let c = SimCluster::paper_cluster();
        let c2 = c.clone();
        c.metrics().advance(SimDuration::from_secs(1.0));
        // Clones share the same metrics sink.
        assert_eq!(c2.metrics().now().as_secs(), 1.0);
    }
}
