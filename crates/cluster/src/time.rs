//! Virtual time arithmetic.
//!
//! All engine timings in this repository are *virtual*: they are computed from
//! work counters through the cost model, never measured from the host clock.
//! This module provides small, total-ordered wrappers over `f64` seconds so
//! virtual durations and instants cannot be confused with wall-clock values.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in seconds. Always finite and non-negative.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds. Panics (debug) on negative or non-finite input.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad duration: {secs}");
        SimDuration(secs.max(0.0))
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// Seconds as `f64`.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Milliseconds as `f64`.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimDuration {}

// Total order is sound: construction forbids NaN.
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating subtraction: virtual durations never go negative.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.2}s", self.0)
        } else {
            write!(f, "{:.1}ms", self.0 * 1e3)
        }
    }
}

/// A point on the virtual timeline, in seconds since simulation start.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimInstant(f64);

impl SimInstant {
    /// Simulation start.
    pub const EPOCH: SimInstant = SimInstant(0.0);

    /// Construct from seconds-since-epoch.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad instant: {secs}");
        SimInstant(secs.max(0.0))
    }

    /// Seconds since epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration since an earlier instant (saturating at zero).
    pub fn since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimInstant) -> SimInstant {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimInstant {}

impl Ord for SimInstant {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimInstant is never NaN")
    }
}

impl PartialOrd for SimInstant {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_secs())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_secs();
    }
}

impl fmt::Debug for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(1.5);
        let b = SimDuration::from_millis(500.0);
        assert_eq!((a + b).as_secs(), 2.0);
        assert_eq!((a - b).as_secs(), 1.0);
        assert_eq!((b - a).as_secs(), 0.0, "subtraction saturates");
        assert_eq!((a * 2.0).as_secs(), 3.0);
        assert_eq!((a / 3.0).as_secs(), 0.5);
    }

    #[test]
    fn duration_ordering_and_sum() {
        let mut v = vec![
            SimDuration::from_secs(3.0),
            SimDuration::from_secs(1.0),
            SimDuration::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
        let total: SimDuration = v.into_iter().sum();
        assert_eq!(total.as_secs(), 6.0);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(2.0);
        assert_eq!(t1.since(t0).as_secs(), 2.0);
        assert_eq!(t0.since(t1).as_secs(), 0.0, "since saturates");
        assert_eq!(t1.max(t0), t1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(2.5).to_string(), "2.50s");
        assert_eq!(SimDuration::from_millis(12.0).to_string(), "12.0ms");
    }

    #[test]
    fn micros_constructor() {
        assert!((SimDuration::from_micros(1500.0).as_millis() - 1.5).abs() < 1e-12);
    }
}
