//! Property-based tests over the dataset substrate: every generator must
//! produce valid transactions for any (bounded) configuration, and the
//! `.dat` text round trip must be lossless.

use proptest::collection::vec;
use proptest::prelude::*;
use yafim_data::{
    from_lines, replicate, stats, to_lines, validate, DenseConfig, DenseGenerator,
    MedicalConfig, MedicalGenerator, QuestConfig, QuestGenerator,
};

fn sorted_tx() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..1000, 1..30).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dat_roundtrip_is_lossless(tx in vec(sorted_tx(), 0..40)) {
        prop_assert_eq!(from_lines(&to_lines(&tx)), tx);
    }

    #[test]
    fn replicate_concatenates(tx in vec(sorted_tx(), 0..20), times in 1usize..5) {
        let r = replicate(&tx, times);
        prop_assert_eq!(r.len(), tx.len() * times);
        for (i, t) in r.iter().enumerate() {
            prop_assert_eq!(t, &tx[i % tx.len().max(1)]);
        }
    }

    #[test]
    fn quest_generator_is_valid_and_deterministic(
        transactions in 1usize..200,
        items in 10u32..300,
        seed in any::<u64>(),
    ) {
        let cfg = QuestConfig {
            transactions,
            items,
            avg_transaction_len: 6.0,
            avg_pattern_len: 3.0,
            patterns: 20,
            correlation: 0.4,
            keep_fraction: 0.6,
            seed,
        };
        let a = QuestGenerator::new(cfg.clone()).generate();
        let b = QuestGenerator::new(cfg).generate();
        prop_assert_eq!(&a, &b, "same seed, same data");
        prop_assert_eq!(a.len(), transactions);
        prop_assert!(validate(&a, items).is_ok());
    }

    #[test]
    fn dense_generator_is_valid_fixed_width(
        transactions in 1usize..200,
        attrs in 2usize..12,
        extra_values in 0u32..30,
        seed in any::<u64>(),
    ) {
        let items = attrs as u32 * 2 + extra_values;
        let cfg = DenseConfig {
            transactions,
            values: DenseConfig::values_for(attrs, items),
            dominant_prob: (0.5, 0.9),
            classes: 2,
            class_linked_fraction: 0.3,
            seed,
        };
        let g = DenseGenerator::new(cfg);
        let tx = g.generate();
        prop_assert_eq!(tx.len(), transactions);
        prop_assert!(validate(&tx, g.num_items()).is_ok());
        prop_assert!(tx.iter().all(|t| t.len() == attrs));
    }

    #[test]
    fn medical_generator_is_valid(
        cases in 1usize..150,
        entities in 20u32..400,
        seed in any::<u64>(),
    ) {
        let cfg = MedicalConfig {
            cases,
            entities,
            groups: 5,
            core_size: 1..3,
            meds_size: 1..4,
            core_prob: 0.9,
            med_prob: 0.6,
            noise_mean: 2.0,
            seed,
        };
        let tx = MedicalGenerator::new(cfg).generate();
        prop_assert_eq!(tx.len(), cases);
        prop_assert!(validate(&tx, entities).is_ok());
    }

    #[test]
    fn stats_are_consistent(tx in vec(sorted_tx(), 1..30)) {
        let s = stats(&tx);
        prop_assert_eq!(s.transactions, tx.len());
        let total: usize = tx.iter().map(Vec::len).sum();
        prop_assert!((s.avg_len - total as f64 / tx.len() as f64).abs() < 1e-9);
        let max_item = tx.iter().flatten().max().copied().unwrap_or(0);
        prop_assert!(s.distinct_items <= max_item as usize + 1);
    }
}
