//! Randomized-but-deterministic tests over the dataset substrate: every
//! generator must produce valid transactions for any (bounded)
//! configuration, and the `.dat` text round trip must be lossless.

use yafim_data::rng::StdRng;
use yafim_data::{
    from_lines, replicate, stats, to_lines, validate, DenseConfig, DenseGenerator, MedicalConfig,
    MedicalGenerator, QuestConfig, QuestGenerator,
};

fn sorted_tx(rng: &mut StdRng) -> Vec<u32> {
    let n = rng.gen_range(1usize..30);
    let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..1000)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn tx_set(rng: &mut StdRng, max: usize) -> Vec<Vec<u32>> {
    let n = rng.gen_range(0usize..max.max(1));
    (0..n).map(|_| sorted_tx(rng)).collect()
}

#[test]
fn dat_roundtrip_is_lossless() {
    let mut rng = StdRng::seed_from_u64(40);
    for _ in 0..64 {
        let tx = tx_set(&mut rng, 40);
        assert_eq!(from_lines(&to_lines(&tx)), tx);
    }
}

#[test]
fn replicate_concatenates() {
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..64 {
        let tx = tx_set(&mut rng, 20);
        let times = rng.gen_range(1usize..5);
        let r = replicate(&tx, times);
        assert_eq!(r.len(), tx.len() * times);
        for (i, t) in r.iter().enumerate() {
            assert_eq!(t, &tx[i % tx.len().max(1)]);
        }
    }
}

#[test]
fn quest_generator_is_valid_and_deterministic() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..32 {
        let transactions = rng.gen_range(1usize..200);
        let items = rng.gen_range(10u32..300);
        let seed: u64 = rng.gen();
        let cfg = QuestConfig {
            transactions,
            items,
            avg_transaction_len: 6.0,
            avg_pattern_len: 3.0,
            patterns: 20,
            correlation: 0.4,
            keep_fraction: 0.6,
            seed,
        };
        let a = QuestGenerator::new(cfg.clone()).generate();
        let b = QuestGenerator::new(cfg).generate();
        assert_eq!(&a, &b, "same seed, same data");
        assert_eq!(a.len(), transactions);
        assert!(validate(&a, items).is_ok());
    }
}

#[test]
fn dense_generator_is_valid_fixed_width() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..32 {
        let transactions = rng.gen_range(1usize..200);
        let attrs = rng.gen_range(2usize..12);
        let extra_values = rng.gen_range(0u32..30);
        let seed: u64 = rng.gen();
        let items = attrs as u32 * 2 + extra_values;
        let cfg = DenseConfig {
            transactions,
            values: DenseConfig::values_for(attrs, items),
            dominant_prob: (0.5, 0.9),
            classes: 2,
            class_linked_fraction: 0.3,
            seed,
        };
        let g = DenseGenerator::new(cfg);
        let tx = g.generate();
        assert_eq!(tx.len(), transactions);
        assert!(validate(&tx, g.num_items()).is_ok());
        assert!(tx.iter().all(|t| t.len() == attrs));
    }
}

#[test]
fn medical_generator_is_valid() {
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..32 {
        let cases = rng.gen_range(1usize..150);
        let entities = rng.gen_range(20u32..400);
        let seed: u64 = rng.gen();
        let cfg = MedicalConfig {
            cases,
            entities,
            groups: 5,
            core_size: 1..3,
            meds_size: 1..4,
            core_prob: 0.9,
            med_prob: 0.6,
            noise_mean: 2.0,
            seed,
        };
        let tx = MedicalGenerator::new(cfg).generate();
        assert_eq!(tx.len(), cases);
        assert!(validate(&tx, entities).is_ok());
    }
}

#[test]
fn stats_are_consistent() {
    let mut rng = StdRng::seed_from_u64(45);
    for _ in 0..64 {
        let mut tx = tx_set(&mut rng, 30);
        if tx.is_empty() {
            tx.push(sorted_tx(&mut rng));
        }
        let s = stats(&tx);
        assert_eq!(s.transactions, tx.len());
        let total: usize = tx.iter().map(Vec::len).sum();
        assert!((s.avg_len - total as f64 / tx.len() as f64).abs() < 1e-9);
        let max_item = tx.iter().flatten().max().copied().unwrap_or(0);
        assert!(s.distinct_items <= max_item as usize + 1);
    }
}
