//! Calibration guards: the Table I profiles must keep producing workloads
//! with the mining *shape* the experiments rely on (multi-pass depth,
//! plausible density). These run on scaled-down generations so the checks
//! stay fast; the shapes are scale-invariant because thresholds are
//! fractions.
//!
//! (Depth is asserted via pair density rather than by running a miner here —
//! `yafim-data` deliberately does not depend on `yafim-core`; the full
//! mining-depth checks live in the core crate's cross-miner tests.)

use std::collections::HashMap;
use yafim_data::{stats, PaperDataset};

/// Fraction of transactions containing the most frequent item pair.
fn max_pair_frequency(tx: &[Vec<u32>]) -> f64 {
    let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
    for t in tx {
        for i in 0..t.len() {
            for j in i + 1..t.len() {
                *counts.entry((t[i], t[j])).or_insert(0) += 1;
            }
        }
    }
    counts.values().copied().max().unwrap_or(0) as f64 / tx.len() as f64
}

#[test]
fn mushroom_profile_is_dense_enough_for_35_percent() {
    let tx = PaperDataset::Mushroom.generate_scaled(0.05);
    assert!(
        max_pair_frequency(&tx) >= 0.35,
        "MushRoom must have pairs above its 35% threshold"
    );
    let s = stats(&tx);
    assert!((s.avg_len - 23.0).abs() < 1e-9, "23 attributes per record");
}

#[test]
fn chess_profile_is_dense_enough_for_85_percent() {
    let tx = PaperDataset::Chess.generate_scaled(0.1);
    assert!(
        max_pair_frequency(&tx) >= 0.85,
        "Chess must have pairs above its 85% threshold"
    );
    assert!((stats(&tx).avg_len - 37.0).abs() < 1e-9);
}

#[test]
fn pumsb_profile_is_dense_enough_for_65_percent() {
    let tx = PaperDataset::PumsbStar.generate_scaled(0.02);
    assert!(
        max_pair_frequency(&tx) >= 0.65,
        "Pumsb_star must have pairs above its 65% threshold"
    );
    assert!((stats(&tx).avg_len - 50.0).abs() < 1e-9);
}

#[test]
fn quest_profile_is_sparse_but_patterned() {
    let tx = PaperDataset::T10I4D100K.generate_scaled(0.05);
    let top = max_pair_frequency(&tx);
    // Sparse overall…
    assert!(top < 0.2, "T10I4D100K is a sparse dataset, top pair {top}");
    // …but with planted patterns well above its 0.25% threshold.
    assert!(
        top >= 0.0025 * 4.0,
        "patterns must clear the threshold, top {top}"
    );
    let s = stats(&tx);
    assert!(s.avg_len > 8.0 && s.avg_len < 14.0);
}

#[test]
fn medical_profile_supports_3_percent_mining() {
    let tx = PaperDataset::Medical.generate_scaled(0.05);
    assert!(
        max_pair_frequency(&tx) >= 0.03,
        "comorbidity pairs must clear the 3% threshold"
    );
}

#[test]
fn all_profiles_are_deterministic_at_any_scale() {
    for ds in PaperDataset::benchmarks() {
        for scale in [0.01, 0.03] {
            assert_eq!(
                ds.generate_scaled(scale),
                ds.generate_scaled(scale),
                "{ds:?} at {scale}"
            );
        }
    }
}
