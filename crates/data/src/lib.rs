//! # yafim-data — dataset substrate
//!
//! The paper evaluates on four benchmark datasets (Table I) plus a
//! proprietary medical-case corpus:
//!
//! | dataset     | items | transactions | character                        |
//! |-------------|-------|--------------|----------------------------------|
//! | MushRoom    | 119   | 8,124        | dense categorical (23 attrs)     |
//! | T10I4D100K  | 870   | 100,000      | sparse, IBM Quest synthetic      |
//! | Chess       | 75    | 3,196        | very dense categorical (37 attrs)|
//! | Pumsb_star  | 2,088 | 49,046       | dense census data                |
//!
//! This environment has no network access to the UCI/FIMI repositories and
//! no IBM Quest binary, so this crate provides generators that reproduce the
//! *shape* of each dataset — item count, transaction count, transaction
//! length, density, and the correlation structure that drives Apriori's
//! iteration depth — as documented in `DESIGN.md` §2. All generators are
//! deterministic given a seed.
//!
//! * [`quest`] — IBM-Quest-style sparse market-basket generator
//!   (for T10I4D100K).
//! * [`dense`] — categorical attribute=value generator
//!   (for MushRoom / Chess / Pumsb_star).
//! * [`medical`] — medical-case generator with comorbidity structure
//!   (for the §V.D application, Fig. 6).
//! * [`profiles`] — the Table I dataset profiles, pre-tuned.
//! * [`io`] — `.dat` text round-tripping and dataset replication (sizeup).

pub mod dense;
pub mod io;
pub mod medical;
pub mod profiles;
pub mod quest;
pub mod rng;

pub use dense::{DenseConfig, DenseGenerator};
pub use io::{from_lines, read_dat, replicate, to_lines, write_dat};
pub use medical::{MedicalConfig, MedicalGenerator};
pub use profiles::{DatasetProfile, PaperDataset};
pub use quest::{QuestConfig, QuestGenerator};

/// An item identifier (mirrors `yafim_core::Item` without the dependency).
pub type Item = u32;

/// A transaction: sorted, deduplicated items.
pub type Transaction = Vec<Item>;

/// Basic statistics of a generated dataset, for checks against Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Distinct items appearing in the data.
    pub distinct_items: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Mean items per transaction.
    pub avg_len: f64,
}

/// Compute [`DatasetStats`] of a transaction list.
pub fn stats(transactions: &[Transaction]) -> DatasetStats {
    let mut seen = std::collections::HashSet::new();
    let mut total = 0usize;
    for t in transactions {
        total += t.len();
        seen.extend(t.iter().copied());
    }
    DatasetStats {
        distinct_items: seen.len(),
        transactions: transactions.len(),
        avg_len: if transactions.is_empty() {
            0.0
        } else {
            total as f64 / transactions.len() as f64
        },
    }
}

/// Check a generated dataset's invariants: sorted, deduplicated, non-empty
/// transactions with items below `max_item`.
pub fn validate(transactions: &[Transaction], max_item: Item) -> Result<(), String> {
    for (i, t) in transactions.iter().enumerate() {
        if t.is_empty() {
            return Err(format!("transaction {i} is empty"));
        }
        if !t.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("transaction {i} is not strictly sorted: {t:?}"));
        }
        if let Some(&bad) = t.iter().find(|&&x| x >= max_item) {
            return Err(format!("transaction {i} has out-of-range item {bad}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let tx = vec![vec![1, 2], vec![2, 3, 4]];
        let s = stats(&tx);
        assert_eq!(s.distinct_items, 4);
        assert_eq!(s.transactions, 2);
        assert!((s.avg_len - 2.5).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let s = stats(&[]);
        assert_eq!(s.transactions, 0);
        assert_eq!(s.avg_len, 0.0);
    }

    #[test]
    fn validate_catches_problems() {
        assert!(validate(&[vec![1, 2]], 10).is_ok());
        assert!(validate(&[vec![]], 10).is_err());
        assert!(validate(&[vec![2, 1]], 10).is_err());
        assert!(validate(&[vec![1, 1]], 10).is_err());
        assert!(validate(&[vec![1, 10]], 10).is_err());
    }
}
