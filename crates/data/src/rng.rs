//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256++ generator with a `rand`-flavoured surface
//! (`StdRng::seed_from_u64`, `gen`, `gen_range`) so the dataset generators
//! need no external crates and produce identical streams on every platform.
//! The statistical quality of xoshiro256++ is far beyond what synthetic
//! market-basket generation requires.

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator.
///
/// All state derives from the seed; the stream is stable across platforms,
/// compilers, and releases of this crate (the calibration tests in
/// `tests/calibration.rs` pin distributional properties of generated data).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed the generator from a single `u64` via splitmix64 expansion, the
    /// procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        StdRng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Sample a value of type `T`; `f64` samples are uniform in `[0, 1)`.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range. Supports the integer `Range` types the
    /// generators use plus `RangeInclusive<f64>`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Sample {
    /// Draw one value from `rng`.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> Self::Output;
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below(rng: &mut StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_range!(u32, u64, usize);

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let u: f64 = rng.gen();
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(2u32..9);
            assert!((2..9).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never sampled");
    }

    #[test]
    fn usize_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.gen_range(1usize..4);
            assert!((1..4).contains(&v));
        }
    }

    #[test]
    fn inclusive_f64_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&v));
        }
    }

    #[test]
    fn golden_stream_is_stable() {
        // Pins the exact output stream: generated datasets (and the
        // calibration tests built on them) silently change if this moves.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }
}
