//! Dense categorical generator — the stand-in for the UCI `MushRoom` and
//! `Chess` datasets and for `Pumsb_star`.
//!
//! Those datasets encode fixed-width records: every transaction has exactly
//! one value per attribute, so transaction length equals the attribute count
//! and the item universe is the sum of per-attribute value counts (e.g.
//! mushroom: 23 attributes → 23 items/transaction, 119 distinct items).
//!
//! What makes them hard for Apriori is *density*: many attributes have one
//! dominant value, so large sets of dominant values co-occur far above high
//! support thresholds, driving many passes. The generator reproduces that
//! with per-attribute dominant-value probabilities plus a latent class (the
//! mushroom edible/poisonous split) that correlates class-linked attributes.

use crate::rng::StdRng;
use crate::Transaction;

/// Parameters of the dense categorical generator.
#[derive(Clone, Debug)]
pub struct DenseConfig {
    /// Number of transactions (records).
    pub transactions: usize,
    /// Number of values per attribute; attribute count = `values.len()`,
    /// distinct items = `values.sum()`.
    pub values: Vec<u32>,
    /// Dominant-value probability range; each attribute draws its own
    /// probability uniformly from this range. Higher → denser → more
    /// Apriori passes at a given support.
    pub dominant_prob: (f64, f64),
    /// Number of latent classes.
    pub classes: usize,
    /// Fraction of attributes whose dominant value depends on the class.
    pub class_linked_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DenseConfig {
    /// Distribute `items` over `attributes` as evenly as possible
    /// (each attribute gets at least 2 values).
    pub fn values_for(attributes: usize, items: u32) -> Vec<u32> {
        assert!(
            items >= 2 * attributes as u32,
            "need ≥2 values per attribute"
        );
        let base = items / attributes as u32;
        let extra = (items % attributes as u32) as usize;
        (0..attributes)
            .map(|a| base + u32::from(a < extra))
            .collect()
    }
}

/// The generator. Construct once, call [`DenseGenerator::generate`].
pub struct DenseGenerator {
    config: DenseConfig,
    /// Item-id offset of each attribute's value block.
    offsets: Vec<u32>,
}

impl DenseGenerator {
    /// A generator with the given parameters.
    pub fn new(config: DenseConfig) -> Self {
        assert!(!config.values.is_empty());
        assert!(config.values.iter().all(|&v| v >= 2));
        assert!(config.classes >= 1);
        let (lo, hi) = config.dominant_prob;
        assert!(0.0 < lo && lo <= hi && hi < 1.0, "bad dominant_prob range");
        let mut offsets = Vec::with_capacity(config.values.len());
        let mut acc = 0u32;
        for &v in &config.values {
            offsets.push(acc);
            acc += v;
        }
        DenseGenerator { config, offsets }
    }

    /// Total distinct items across all attributes.
    pub fn num_items(&self) -> u32 {
        self.config.values.iter().sum()
    }

    /// Generate the dataset (deterministic for a given config).
    pub fn generate(&self) -> Vec<Transaction> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let attrs = cfg.values.len();

        // Per-attribute dominant probability and per-class dominant value.
        let (lo, hi) = cfg.dominant_prob;
        let dom_prob: Vec<f64> = (0..attrs).map(|_| rng.gen_range(lo..=hi)).collect();
        let class_linked: Vec<bool> = (0..attrs)
            .map(|_| rng.gen::<f64>() < cfg.class_linked_fraction)
            .collect();
        // dominant[a][c] = the dominant value of attribute a under class c.
        let dominant: Vec<Vec<u32>> = (0..attrs)
            .map(|a| {
                let shared = rng.gen_range(0..cfg.values[a]);
                (0..cfg.classes)
                    .map(|_| {
                        if class_linked[a] {
                            rng.gen_range(0..cfg.values[a])
                        } else {
                            shared
                        }
                    })
                    .collect()
            })
            .collect();

        let mut out = Vec::with_capacity(cfg.transactions);
        for _ in 0..cfg.transactions {
            let class = rng.gen_range(0..cfg.classes);
            let mut t: Transaction = Vec::with_capacity(attrs);
            for a in 0..attrs {
                let value = if rng.gen::<f64>() < dom_prob[a] {
                    dominant[a][class]
                } else {
                    rng.gen_range(0..cfg.values[a])
                };
                t.push(self.offsets[a] + value);
            }
            // One value per attribute in disjoint id ranges → already
            // strictly sorted and distinct.
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stats, validate};

    fn small() -> DenseConfig {
        DenseConfig {
            transactions: 1000,
            values: DenseConfig::values_for(10, 50),
            dominant_prob: (0.7, 0.95),
            classes: 2,
            class_linked_fraction: 0.3,
            seed: 42,
        }
    }

    #[test]
    fn values_for_distributes_exactly() {
        let v = DenseConfig::values_for(23, 119);
        assert_eq!(v.len(), 23);
        assert_eq!(v.iter().sum::<u32>(), 119);
        assert!(v.iter().all(|&x| x >= 2));
        // Spread is at most 1.
        let (min, max) = (v.iter().min().unwrap(), v.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn deterministic() {
        let a = DenseGenerator::new(small()).generate();
        let b = DenseGenerator::new(small()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_width_transactions() {
        let g = DenseGenerator::new(small());
        let tx = g.generate();
        validate(&tx, g.num_items()).expect("valid");
        assert!(tx.iter().all(|t| t.len() == 10), "one item per attribute");
        let s = stats(&tx);
        assert_eq!(s.transactions, 1000);
        assert!((s.avg_len - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_values_make_it_dense() {
        let g = DenseGenerator::new(small());
        let tx = g.generate();
        // Some single item should appear in ≥ 60% of transactions.
        let mut counts = std::collections::HashMap::new();
        for t in &tx {
            for &i in t {
                *counts.entry(i).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 600, "densest item only in {max}/1000 transactions");
    }

    #[test]
    fn one_value_per_attribute_range() {
        let g = DenseGenerator::new(small());
        let tx = g.generate();
        for t in &tx {
            for (a, &item) in t.iter().enumerate() {
                let lo = g.offsets[a];
                let hi = lo + g.config.values[a];
                assert!(item >= lo && item < hi, "item {item} outside attr {a}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad dominant_prob")]
    fn rejects_invalid_prob_range() {
        let mut cfg = small();
        cfg.dominant_prob = (0.9, 0.5);
        DenseGenerator::new(cfg);
    }
}
