//! IBM-Quest-style synthetic market-basket generator (Agrawal & Srikant,
//! the paper's ref \[20\]) — the stand-in for `T10I4D100K`.
//!
//! The classic procedure: draw a pool of "potentially large" itemsets
//! (pattern lengths ~ Poisson around `avg_pattern_len`, successive patterns
//! sharing a correlated fraction of items, pattern weights exponential);
//! build each transaction (length ~ Poisson around `avg_transaction_len`) by
//! sampling weighted patterns, corrupting each (dropping a random suffix
//! fraction), and topping up with uniform noise items.

use crate::rng::StdRng;
use crate::{Item, Transaction};

/// Parameters of the Quest generator. `T10I4D100K` in Quest naming means
/// `avg_transaction_len = 10`, `avg_pattern_len = 4`, 100k transactions.
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// Number of transactions (D).
    pub transactions: usize,
    /// Item universe size (N).
    pub items: u32,
    /// Mean transaction length (T).
    pub avg_transaction_len: f64,
    /// Mean pattern length (I).
    pub avg_pattern_len: f64,
    /// Number of potentially-large patterns (L).
    pub patterns: usize,
    /// Fraction of a pattern reused from its predecessor.
    pub correlation: f64,
    /// Mean fraction of a pattern kept when planted (corruption keeps
    /// a prefix of roughly this share).
    pub keep_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl QuestConfig {
    /// The `T10I4D100K` parameters (Table I row 2).
    pub fn t10i4d100k() -> Self {
        QuestConfig {
            transactions: 100_000,
            items: 870,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            patterns: 1000,
            correlation: 0.25,
            keep_fraction: 0.55,
            seed: 0x10_4410_0000,
        }
    }
}

/// The generator. Construct once, call [`QuestGenerator::generate`].
pub struct QuestGenerator {
    config: QuestConfig,
}

impl QuestGenerator {
    /// A generator with the given parameters.
    pub fn new(config: QuestConfig) -> Self {
        assert!(config.items > 0 && config.transactions > 0);
        assert!(config.patterns > 0);
        QuestGenerator { config }
    }

    /// Generate the dataset (deterministic for a given config).
    pub fn generate(&self) -> Vec<Transaction> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // --- pattern pool ---
        let mut patterns: Vec<Vec<Item>> = Vec::with_capacity(cfg.patterns);
        for p in 0..cfg.patterns {
            let len = poisson_at_least_1(&mut rng, cfg.avg_pattern_len);
            let mut items = Vec::with_capacity(len);
            if p > 0 {
                // Reuse a correlated fraction of the previous pattern.
                let prev = &patterns[p - 1];
                for &it in prev {
                    if rng.gen::<f64>() < cfg.correlation && items.len() < len {
                        items.push(it);
                    }
                }
            }
            while items.len() < len {
                let it = rng.gen_range(0..cfg.items);
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            patterns.push(items);
        }

        // Exponential pattern weights, normalized into a cumulative table.
        let weights: Vec<f64> = (0..cfg.patterns)
            .map(|_| -(rng.gen::<f64>().max(1e-12)).ln())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(cfg.patterns);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }

        // --- transactions ---
        let mut out = Vec::with_capacity(cfg.transactions);
        for _ in 0..cfg.transactions {
            let target = poisson_at_least_1(&mut rng, cfg.avg_transaction_len);
            let mut t: Vec<Item> = Vec::with_capacity(target + 4);
            // Plant corrupted patterns until the target size is reached.
            let mut guard = 0;
            while t.len() < target && guard < 64 {
                guard += 1;
                let r = rng.gen::<f64>();
                let idx = cumulative.partition_point(|&c| c < r).min(cfg.patterns - 1);
                let pat = &patterns[idx];
                // Corruption: keep a geometric-ish prefix of the pattern.
                let mut keep = pat.len();
                while keep > 1 && rng.gen::<f64>() > cfg.keep_fraction {
                    keep -= 1;
                }
                t.extend(&pat[..keep]);
            }
            // Top up with noise if patterns under-filled. Noise popularity
            // is skewed (squared uniform → low ids favored), matching the
            // long-tailed item frequencies of real market-basket data; a
            // uniform fill would make nearly every item frequent at low
            // support thresholds.
            while t.len() < target {
                let r = rng.gen::<f64>();
                t.push(((r * r) * cfg.items as f64) as Item % cfg.items);
            }
            t.sort_unstable();
            t.dedup();
            if t.is_empty() {
                t.push(rng.gen_range(0..cfg.items));
            }
            out.push(t);
        }
        out
    }
}

/// Poisson-distributed sample via Knuth's method, clamped to ≥ 1.
fn poisson_at_least_1(rng: &mut StdRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            break;
        }
        k += 1;
        if k > (mean * 8.0) as usize + 16 {
            break; // numeric guard
        }
    }
    k.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stats, validate};

    fn small() -> QuestConfig {
        QuestConfig {
            transactions: 2000,
            items: 200,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            patterns: 50,
            correlation: 0.5,
            keep_fraction: 0.8,
            seed: 7,
        }
    }

    #[test]
    fn deterministic() {
        let a = QuestGenerator::new(small()).generate();
        let b = QuestGenerator::new(small()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small();
        let a = QuestGenerator::new(cfg.clone()).generate();
        cfg.seed = 8;
        let b = QuestGenerator::new(cfg).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_shape() {
        let tx = QuestGenerator::new(small()).generate();
        validate(&tx, 200).expect("valid transactions");
        let s = stats(&tx);
        assert_eq!(s.transactions, 2000);
        assert!(
            s.avg_len > 6.0 && s.avg_len < 14.0,
            "avg length ≈ 10, got {}",
            s.avg_len
        );
    }

    #[test]
    fn patterns_create_correlation() {
        // Pattern planting must make some item *pairs* far more frequent
        // than independence would allow in a 200-item universe.
        let tx = QuestGenerator::new(small()).generate();
        let mut pair_counts = std::collections::HashMap::new();
        for t in &tx {
            for i in 0..t.len() {
                for j in i + 1..t.len() {
                    *pair_counts.entry((t[i], t[j])).or_insert(0u32) += 1;
                }
            }
        }
        let max_pair = pair_counts.values().copied().max().unwrap_or(0);
        assert!(
            max_pair > 100,
            "expected a strongly correlated pair, best was {max_pair}/2000"
        );
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let total: usize = (0..n).map(|_| poisson_at_least_1(&mut rng, 10.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }
}
