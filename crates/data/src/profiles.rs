//! The paper's dataset profiles (Table I), pre-tuned.
//!
//! Each [`PaperDataset`] knows its Table I shape (distinct items,
//! transaction count), the support threshold the paper used for it, and how
//! to generate a synthetic stand-in with that shape (see the crate docs and
//! `DESIGN.md` §2 for the substitution rationale).

use crate::dense::{DenseConfig, DenseGenerator};
use crate::medical::{MedicalConfig, MedicalGenerator};
use crate::quest::{QuestConfig, QuestGenerator};
use crate::Transaction;

/// One of the paper's evaluation datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// UCI mushroom records (poisonous/edible, 22 attributes + class).
    Mushroom,
    /// IBM Quest synthetic market baskets.
    T10I4D100K,
    /// UCI chess endgame positions (king+rook vs king).
    Chess,
    /// Census data (pumsb with >80%-frequent items removed).
    PumsbStar,
    /// The real-world medical case data of §V.D.
    Medical,
}

/// Static facts about a dataset as reported in Table I (plus the support
/// threshold its figures use).
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetProfile {
    /// Display name as printed in the paper.
    pub name: &'static str,
    /// Which dataset.
    pub dataset: PaperDataset,
    /// Distinct items (Table I column 2).
    pub items: u32,
    /// Transactions (Table I column 3).
    pub transactions: usize,
    /// Support threshold used in Figs. 3-5 (fraction).
    pub support: f64,
}

impl PaperDataset {
    /// The four benchmark datasets of Table I, in the paper's order.
    pub fn benchmarks() -> [PaperDataset; 4] {
        [
            PaperDataset::Mushroom,
            PaperDataset::T10I4D100K,
            PaperDataset::Chess,
            PaperDataset::PumsbStar,
        ]
    }

    /// Table I facts for this dataset.
    pub fn profile(&self) -> DatasetProfile {
        match self {
            PaperDataset::Mushroom => DatasetProfile {
                name: "MushRoom",
                dataset: *self,
                items: 119,
                transactions: 8_124,
                support: 0.35,
            },
            PaperDataset::T10I4D100K => DatasetProfile {
                name: "T10I4D100K",
                dataset: *self,
                items: 870,
                transactions: 100_000,
                support: 0.0025,
            },
            PaperDataset::Chess => DatasetProfile {
                name: "Chess",
                dataset: *self,
                items: 75,
                transactions: 3_196,
                support: 0.85,
            },
            PaperDataset::PumsbStar => DatasetProfile {
                name: "Pumsb_star",
                dataset: *self,
                items: 2_088,
                transactions: 49_046,
                support: 0.65,
            },
            PaperDataset::Medical => DatasetProfile {
                name: "Medical",
                dataset: *self,
                items: 900,
                transactions: 40_000,
                support: 0.03,
            },
        }
    }

    /// Generate the full-size synthetic stand-in.
    pub fn generate(&self) -> Vec<Transaction> {
        self.generate_scaled(1.0)
    }

    /// Generate with a scaled transaction count (same item universe and
    /// correlation structure; `scale < 1` keeps tests fast).
    pub fn generate_scaled(&self, scale: f64) -> Vec<Transaction> {
        assert!(scale > 0.0 && scale <= 1.0);
        let p = self.profile();
        let n = ((p.transactions as f64 * scale).round() as usize).max(10);
        match self {
            PaperDataset::Mushroom => DenseGenerator::new(DenseConfig {
                transactions: n,
                values: DenseConfig::values_for(23, p.items),
                dominant_prob: (0.45, 0.92),
                classes: 2,
                class_linked_fraction: 0.5,
                seed: 0x6d75_7368,
            })
            .generate(),
            PaperDataset::Chess => DenseGenerator::new(DenseConfig {
                transactions: n,
                values: DenseConfig::values_for(37, p.items),
                dominant_prob: (0.72, 0.97),
                classes: 2,
                class_linked_fraction: 0.25,
                seed: 0x6368_6573,
            })
            .generate(),
            PaperDataset::PumsbStar => DenseGenerator::new(DenseConfig {
                transactions: n,
                values: DenseConfig::values_for(50, p.items),
                dominant_prob: (0.60, 0.97),
                classes: 3,
                class_linked_fraction: 0.4,
                seed: 0x7075_6d73,
            })
            .generate(),
            PaperDataset::T10I4D100K => QuestGenerator::new(QuestConfig {
                transactions: n,
                ..QuestConfig::t10i4d100k()
            })
            .generate(),
            PaperDataset::Medical => MedicalGenerator::new(MedicalConfig {
                cases: n,
                ..MedicalConfig::paper_scale()
            })
            .generate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn profiles_match_table_1() {
        let m = PaperDataset::Mushroom.profile();
        assert_eq!((m.items, m.transactions), (119, 8124));
        let t = PaperDataset::T10I4D100K.profile();
        assert_eq!((t.items, t.transactions), (870, 100_000));
        let c = PaperDataset::Chess.profile();
        assert_eq!((c.items, c.transactions), (75, 3196));
        let p = PaperDataset::PumsbStar.profile();
        assert_eq!((p.items, p.transactions), (2088, 49_046));
    }

    #[test]
    fn generated_shape_matches_profiles() {
        for ds in PaperDataset::benchmarks() {
            let p = ds.profile();
            let tx = ds.generate_scaled(0.05);
            let s = stats(&tx);
            assert_eq!(
                s.transactions,
                ((p.transactions as f64 * 0.05).round() as usize).max(10),
                "{}",
                p.name
            );
            assert!(
                s.distinct_items as u32 <= p.items,
                "{}: {} items > {}",
                p.name,
                s.distinct_items,
                p.items
            );
            // Dense sets use (nearly) the whole universe even at 5% scale;
            // the sparse Quest set covers the full universe only at larger
            // scales, so the floor here is loose.
            assert!(
                s.distinct_items as f64 >= p.items as f64 * 0.3,
                "{}: only {} of {} items appear",
                p.name,
                s.distinct_items,
                p.items
            );
        }
    }

    #[test]
    fn scaled_generation_is_prefix_stable_in_count() {
        let a = PaperDataset::Mushroom.generate_scaled(0.02);
        let b = PaperDataset::Mushroom.generate_scaled(0.02);
        assert_eq!(a, b, "same scale is deterministic");
    }

    #[test]
    fn medical_profile_generates() {
        let tx = PaperDataset::Medical.generate_scaled(0.02);
        assert_eq!(tx.len(), 800);
    }
}
