//! Medical-case generator — the stand-in for the paper's real-world
//! application dataset (§V.D, Fig. 6).
//!
//! The paper mines hospital case records for "relationships in medicine":
//! each case is a basket of medical entities (diagnoses, prescribed
//! medications, procedures). The structure that makes FIM interesting there
//! is *comorbidity*: a diagnosis group drags in its typical co-diagnoses and
//! standard medications, producing deep, confident association rules (e.g.
//! hypertension + diabetes ⇒ metformin, ACE inhibitor).
//!
//! The generator plants `groups` comorbidity groups, each a core of
//! diagnoses plus a set of typical medications; a case samples one or two
//! groups (Zipf-skewed prevalence), includes core entities with high
//! probability and medications with moderate probability, then adds uniform
//! noise entities.

use crate::rng::StdRng;
use crate::{Item, Transaction};

/// Parameters of the medical-case generator.
#[derive(Clone, Debug)]
pub struct MedicalConfig {
    /// Number of cases (transactions).
    pub cases: usize,
    /// Entity vocabulary size (diagnoses + medications + procedures).
    pub entities: u32,
    /// Number of comorbidity groups.
    pub groups: usize,
    /// Diagnoses per group core.
    pub core_size: std::ops::Range<usize>,
    /// Medications per group.
    pub meds_size: std::ops::Range<usize>,
    /// Probability a core entity appears when its group is active.
    pub core_prob: f64,
    /// Probability a medication appears when its group is active.
    pub med_prob: f64,
    /// Mean number of noise entities per case.
    pub noise_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MedicalConfig {
    /// The profile used by the Fig. 6 reproduction: 40k cases over 900
    /// entities with 25 comorbidity groups — sized so that Sup = 3% yields
    /// a deep pass series like the paper's medical run.
    pub fn paper_scale() -> Self {
        MedicalConfig {
            cases: 40_000,
            entities: 900,
            groups: 25,
            core_size: 2..5,
            meds_size: 3..7,
            core_prob: 0.9,
            med_prob: 0.75,
            noise_mean: 4.0,
            seed: 0x6d65_6469,
        }
    }
}

/// The generator. Construct once, call [`MedicalGenerator::generate`].
pub struct MedicalGenerator {
    config: MedicalConfig,
}

impl MedicalGenerator {
    /// A generator with the given parameters.
    pub fn new(config: MedicalConfig) -> Self {
        assert!(config.entities > 0 && config.cases > 0 && config.groups > 0);
        assert!(config.core_size.start >= 1 && !config.core_size.is_empty());
        assert!(!config.meds_size.is_empty());
        MedicalGenerator { config }
    }

    /// Generate the dataset (deterministic for a given config).
    pub fn generate(&self) -> Vec<Transaction> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Build the comorbidity groups over disjoint-ish entity draws.
        struct Group {
            core: Vec<Item>,
            meds: Vec<Item>,
        }
        let mut groups = Vec::with_capacity(cfg.groups);
        for _ in 0..cfg.groups {
            let core_n = rng.gen_range(cfg.core_size.clone());
            let meds_n = rng.gen_range(cfg.meds_size.clone());
            let pick = |n: usize, rng: &mut StdRng| -> Vec<Item> {
                let mut v = Vec::with_capacity(n);
                while v.len() < n {
                    let e = rng.gen_range(0..cfg.entities);
                    if !v.contains(&e) {
                        v.push(e);
                    }
                }
                v
            };
            groups.push(Group {
                core: pick(core_n, &mut rng),
                meds: pick(meds_n, &mut rng),
            });
        }

        // Zipf-skewed group prevalence: group g chosen ∝ 1/(g+1).
        let weights: Vec<f64> = (0..cfg.groups).map(|g| 1.0 / (g + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(cfg.groups);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        let pick_group = move |rng: &mut StdRng| -> usize {
            let r = rng.gen::<f64>();
            cumulative.partition_point(|&c| c < r).min(cfg.groups - 1)
        };

        let mut out = Vec::with_capacity(cfg.cases);
        for _ in 0..cfg.cases {
            let mut t: Vec<Item> = Vec::new();
            let n_groups = if rng.gen::<f64>() < 0.3 { 2 } else { 1 };
            for _ in 0..n_groups {
                let g = &groups[pick_group(&mut rng)];
                for &d in &g.core {
                    if rng.gen::<f64>() < cfg.core_prob {
                        t.push(d);
                    }
                }
                for &m in &g.meds {
                    if rng.gen::<f64>() < cfg.med_prob {
                        t.push(m);
                    }
                }
            }
            // Noise entities (incidental findings, unrelated prescriptions).
            let noise = poisson(&mut rng, cfg.noise_mean);
            for _ in 0..noise {
                t.push(rng.gen_range(0..cfg.entities));
            }
            t.sort_unstable();
            t.dedup();
            if t.is_empty() {
                t.push(rng.gen_range(0..cfg.entities));
            }
            out.push(t);
        }
        out
    }
}

fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            break;
        }
        k += 1;
        if k > (mean * 8.0) as usize + 16 {
            break;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stats, validate};

    fn small() -> MedicalConfig {
        MedicalConfig {
            cases: 3000,
            entities: 300,
            groups: 10,
            core_size: 2..4,
            meds_size: 2..5,
            core_prob: 0.9,
            med_prob: 0.7,
            noise_mean: 3.0,
            seed: 5,
        }
    }

    #[test]
    fn deterministic() {
        let a = MedicalGenerator::new(small()).generate();
        let b = MedicalGenerator::new(small()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn valid_shape() {
        let tx = MedicalGenerator::new(small()).generate();
        validate(&tx, 300).expect("valid");
        let s = stats(&tx);
        assert_eq!(s.transactions, 3000);
        assert!(s.avg_len >= 3.0 && s.avg_len <= 20.0, "avg {}", s.avg_len);
    }

    #[test]
    fn comorbidity_produces_frequent_pairs() {
        // The most prevalent group's core must co-occur well above the 3%
        // support the paper uses for the medical run.
        let tx = MedicalGenerator::new(small()).generate();
        let mut pair_counts = std::collections::HashMap::new();
        for t in &tx {
            for i in 0..t.len() {
                for j in i + 1..t.len() {
                    *pair_counts.entry((t[i], t[j])).or_insert(0u32) += 1;
                }
            }
        }
        let max = pair_counts.values().copied().max().unwrap();
        assert!(
            max as f64 > 0.05 * tx.len() as f64,
            "strongest pair in {max}/{} cases",
            tx.len()
        );
    }
}
