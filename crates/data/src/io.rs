//! `.dat` text format round-tripping and dataset replication.
//!
//! The FIMI/UCI `.dat` convention: one transaction per line, items as
//! whitespace-separated decimal ids. Both engines read datasets in this
//! format from simulated HDFS; [`to_lines`]/[`from_lines`] convert between
//! transaction lists and text, and [`replicate`] produces the N×-enlarged
//! datasets of the paper's sizeup experiment (Fig. 4).

use crate::{Item, Transaction};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Render transactions as `.dat` lines.
pub fn to_lines(transactions: &[Transaction]) -> Vec<String> {
    transactions
        .iter()
        .map(|t| {
            let mut s = String::with_capacity(t.len() * 4);
            for (i, item) in t.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(&item.to_string());
            }
            s
        })
        .collect()
}

/// Parse `.dat` lines back into transactions (sorting and deduplicating;
/// blank lines are skipped, unparseable tokens ignored).
pub fn from_lines<S: AsRef<str>>(lines: &[S]) -> Vec<Transaction> {
    lines
        .iter()
        .filter_map(|l| {
            let mut items: Vec<Item> = l
                .as_ref()
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect();
            if items.is_empty() {
                return None;
            }
            items.sort_unstable();
            items.dedup();
            Some(items)
        })
        .collect()
}

/// Write a `.dat` file to the local filesystem.
pub fn write_dat(path: impl AsRef<Path>, transactions: &[Transaction]) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for line in to_lines(transactions) {
        writeln!(out, "{line}")?;
    }
    out.flush()
}

/// Read a `.dat` file from the local filesystem.
pub fn read_dat(path: impl AsRef<Path>) -> std::io::Result<Vec<Transaction>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    Ok(from_lines(&lines))
}

/// Concatenate `times` copies of the dataset — the paper's sizeup
/// methodology ("we replicate four datasets to 2, 3, 4, 5 and 6 times in
/// size"). Replication preserves every relative support exactly, so the
/// mining result is identical while the data volume scales.
pub fn replicate(transactions: &[Transaction], times: usize) -> Vec<Transaction> {
    assert!(times >= 1);
    let mut out = Vec::with_capacity(transactions.len() * times);
    for _ in 0..times {
        out.extend(transactions.iter().cloned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_roundtrip() {
        let tx = vec![vec![1, 5, 9], vec![2], vec![3, 4]];
        let lines = to_lines(&tx);
        assert_eq!(lines, vec!["1 5 9", "2", "3 4"]);
        assert_eq!(from_lines(&lines), tx);
    }

    #[test]
    fn from_lines_cleans_input() {
        let lines = vec!["5 3 3 1", "", "  ", "x 2"];
        assert_eq!(from_lines(&lines), vec![vec![1, 3, 5], vec![2]]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("yafim-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dat");
        let tx = vec![vec![10, 20], vec![30]];
        write_dat(&path, &tx).unwrap();
        assert_eq!(read_dat(&path).unwrap(), tx);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replicate_scales_exactly() {
        let tx = vec![vec![1], vec![2]];
        let r = replicate(&tx, 3);
        assert_eq!(r.len(), 6);
        assert_eq!(&r[0..2], &tx[..]);
        assert_eq!(&r[4..6], &tx[..]);
        assert_eq!(replicate(&tx, 1), tx);
    }
}
