//! Workspace-level integration tests: the whole stack — generators →
//! simulated HDFS → both engines → miners → rules — exercised through the
//! public `yafim` facade, the way a downstream user would.

use yafim::cluster::{ClusterSpec, CostModel, EventKind, SimCluster};
use yafim::data::{stats, to_lines, PaperDataset};
use yafim::rdd::Context;
use yafim::{
    apriori, generate_rules, Itemset, MrApriori, MrAprioriConfig, RuleConfig, SequentialConfig,
    Support, Yafim, YafimConfig,
};

fn small_cluster() -> SimCluster {
    SimCluster::with_threads(ClusterSpec::new(4, 2, 1 << 30), CostModel::hadoop_era(), 2)
}

#[test]
fn full_pipeline_yafim_vs_mr_on_generated_data() {
    let tx = PaperDataset::Mushroom.generate_scaled(0.05);
    let support = Support::Fraction(0.35);

    let spark = small_cluster();
    spark.hdfs().put_overwrite("m.dat", to_lines(&tx));
    let yafim = Yafim::new(Context::new(spark.clone()), YafimConfig::new(support))
        .mine("m.dat")
        .expect("written");

    let hadoop = small_cluster();
    hadoop.hdfs().put_overwrite("m.dat", to_lines(&tx));
    let mr = MrApriori::new(hadoop.clone(), MrAprioriConfig::new(support))
        .mine("m.dat")
        .expect("written");

    // Identical itemsets; YAFIM wins on virtual time; both clocked.
    assert_eq!(yafim.result, mr.result);
    assert!(yafim.result.total() > 0);
    assert!(
        yafim.total_seconds < mr.total_seconds,
        "YAFIM {} vs MR {}",
        yafim.total_seconds,
        mr.total_seconds
    );
    assert!(spark.metrics().now().as_secs() > 0.0);
    assert!(hadoop.metrics().now().as_secs() > 0.0);
}

#[test]
fn per_pass_events_reconstruct_fig3_series() {
    let tx = PaperDataset::Chess.generate_scaled(0.05);
    let cluster = small_cluster();
    cluster.hdfs().put_overwrite("c.dat", to_lines(&tx));
    let run = Yafim::new(
        Context::new(cluster.clone()),
        YafimConfig::new(Support::Fraction(0.85)),
    )
    .mine("c.dat")
    .expect("written");

    let events = cluster.metrics().events_of(EventKind::Iteration);
    assert_eq!(events.len(), run.passes.len());
    for (e, p) in events.iter().zip(&run.passes) {
        assert!((e.duration.as_secs() - p.seconds).abs() < 1e-9);
    }
    // Events tile the timeline in order.
    for w in events.windows(2) {
        assert!(w[1].start >= w[0].end());
    }
}

#[test]
fn rules_from_distributed_mining_match_sequential_mining() {
    let tx = PaperDataset::Medical.generate_scaled(0.01);
    let support = Support::Fraction(0.05);

    let cluster = small_cluster();
    cluster.hdfs().put_overwrite("med.dat", to_lines(&tx));
    let run = Yafim::new(Context::new(cluster), YafimConfig::new(support))
        .mine("med.dat")
        .expect("written");
    let seq = apriori(&tx, &SequentialConfig::new(support));

    let cfg = RuleConfig::new(0.7);
    let from_dist = generate_rules(&run.result, tx.len() as u64, &cfg);
    let from_seq = generate_rules(&seq, tx.len() as u64, &cfg);
    assert_eq!(from_dist, from_seq);
}

#[test]
fn dataset_stats_flow_through_hdfs_unchanged() {
    let tx = PaperDataset::T10I4D100K.generate_scaled(0.01);
    let s_before = stats(&tx);

    let cluster = small_cluster();
    cluster.hdfs().put_overwrite("t.dat", to_lines(&tx));
    let ctx = Context::new(cluster);
    let roundtrip: Vec<Vec<u32>> = ctx
        .text_file("t.dat", 8)
        .expect("written")
        .map(|l| yafim::parse_transaction(&l))
        .collect();
    assert_eq!(stats(&roundtrip), s_before);
    assert_eq!(roundtrip, tx);
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-and-run check that the documented entry points exist.
    let cluster = SimCluster::paper_cluster();
    assert_eq!(cluster.spec().total_cores(), 96);
    let ctx = Context::new(cluster);
    let run = yafim::mine_in_memory(
        &ctx,
        &[vec![1, 2], vec![1, 2], vec![2, 3]],
        YafimConfig::new(Support::Count(2)),
    );
    assert_eq!(run.result.support_of(&Itemset::new(vec![1, 2])), Some(2));
}

#[test]
fn virtual_time_is_deterministic_across_runs() {
    // The load-bearing property of the whole evaluation: identical inputs
    // give bit-identical virtual timings.
    let tx = PaperDataset::Mushroom.generate_scaled(0.02);
    let mut totals = Vec::new();
    for _ in 0..2 {
        let cluster = small_cluster();
        cluster.hdfs().put_overwrite("m.dat", to_lines(&tx));
        let run = Yafim::new(
            Context::new(cluster),
            YafimConfig::new(Support::Fraction(0.35)),
        )
        .mine("m.dat")
        .expect("written");
        totals.push((run.total_seconds, run.pass_seconds()));
    }
    assert_eq!(totals[0], totals[1], "virtual time must be deterministic");
}
