//! # yafim — a Rust reproduction of *YAFIM: A Parallel Frequent Itemset
//! Mining Algorithm with Spark* (IPDPS Workshops 2014)
//!
//! YAFIM re-expresses the Apriori algorithm on Spark's RDD model: the
//! transactional dataset is loaded into a cached in-memory RDD once, and
//! each Apriori pass broadcasts a hash tree of candidate itemsets to the
//! workers and counts supports with `flatMap → map → reduceByKey`. Against
//! a Hadoop MapReduce implementation — which re-reads the dataset from HDFS
//! and launches a fresh job every pass — the paper reports ~18× average
//! speedup (~25× on a medical-records workload).
//!
//! There is no Spark here; the distributed runtime is reproduced in-tree
//! (see `DESIGN.md`):
//!
//! * [`cluster`] — a deterministic virtual cluster: calibrated cost model,
//!   virtual-time scheduler, simulated HDFS. Data processing is real; time
//!   is virtual.
//! * [`rdd`] — a mini-Spark: typed RDDs with lineage, stages, shuffle,
//!   caching, broadcast variables, lineage-based fault recovery.
//! * [`mapreduce`] — a Hadoop-1.x-style MapReduce engine (the baseline's
//!   substrate).
//! * `core` (re-exported at the top level) — the mining algorithms:
//!   YAFIM, MR-Apriori (SPC/FPC/DPC), sequential Apriori, Eclat, FP-Growth,
//!   and association-rule generation.
//! * [`data`] — generators reproducing the shape of the paper's datasets
//!   (Table I) and the medical application corpus.
//!
//! ## Quickstart
//!
//! ```
//! use yafim::cluster::SimCluster;
//! use yafim::rdd::Context;
//! use yafim::{mine_in_memory, Support, YafimConfig};
//!
//! // The paper's 12-node × 8-core cluster, simulated.
//! let ctx = Context::new(SimCluster::paper_cluster());
//!
//! let transactions = vec![
//!     vec![1, 3, 4],
//!     vec![2, 3, 5],
//!     vec![1, 2, 3, 5],
//!     vec![2, 5],
//! ];
//! let run = mine_in_memory(&ctx, &transactions, YafimConfig::new(Support::Count(2)));
//!
//! assert_eq!(run.result.level_sizes(), vec![4, 4, 1]);
//! println!("mined {} itemsets in {:.2} virtual seconds",
//!          run.result.total(), run.total_seconds);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every table and figure of the paper.

pub use yafim_core::*;

/// The virtual-cluster substrate (re-export of `yafim-cluster`).
pub mod cluster {
    pub use yafim_cluster::*;
}

/// The mini-Spark RDD engine (re-export of `yafim-rdd`).
pub mod rdd {
    pub use yafim_rdd::*;
}

/// The MapReduce engine (re-export of `yafim-mapreduce`).
pub mod mapreduce {
    pub use yafim_mapreduce::*;
}

/// Dataset generators and I/O (re-export of `yafim-data`).
pub mod data {
    pub use yafim_data::*;
}
