//! `yafim-cli` — command-line frontend to the whole library.
//!
//! ```text
//! yafim-cli generate --dataset mushroom --out mushroom.dat [--scale 0.5]
//! yafim-cli mine --input mushroom.dat --support 35% [--miner spark]
//!           [--nodes 12 --cores 8] [--rules 0.8] [--top 10] [--timeline]
//!           [--report] [--trace out.json]
//! yafim-cli compare --input mushroom.dat --support 35%
//! ```
//!
//! `--report` prints a Spark-UI-style per-stage/per-iteration summary;
//! `--trace FILE` writes a Chrome trace (open in <https://ui.perfetto.dev>
//! or `chrome://tracing`) of the run's job/stage/task spans, one process
//! per simulated node and one thread per core.
//!
//! Miners: `sequential` (Apriori), `eclat`, `fpgrowth` (single-node);
//! `spark` (YAFIM, default), `mapreduce` (MR-Apriori/SPC), `son`, `pfp`
//! (distributed, on the simulated cluster — virtual timings are reported).

use std::process::exit;
use yafim::cluster::{ClusterSpec, CostModel, SimCluster};
use yafim::data::{read_dat, to_lines, PaperDataset};
use yafim::rdd::Context;
use yafim::{
    apriori, eclat, fp_growth, generate_rules, MinerRun, MrApriori, MrAprioriConfig, Pfp,
    PfpConfig, RuleConfig, SequentialConfig, Son, SonConfig, Support, Yafim, YafimConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage:
  yafim-cli generate --dataset <mushroom|t10|chess|pumsb|medical> --out <file.dat> [--scale X]
  yafim-cli mine     --input <file.dat> --support <N|P%> [--miner <sequential|eclat|fpgrowth|spark|mapreduce|son|pfp>]
                     [--phase2 <paper|opt|bitmap>] [--nodes N] [--cores C] [--locality-wait SECS]
                     [--memory-fraction FRAC]
                     [--rules MIN_CONF] [--top K]
                     [--fault-plan plan.json] [--timeline] [--report] [--trace out.json]
                     [--critical-path] [--manifest out.json]
  yafim-cli compare  --input <file.dat> --support <N|P%> [--nodes N] [--cores C]"
    );
    exit(2)
}

/// `--name value` lookup over argv.
fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn parse_support(s: &str) -> Support {
    if let Some(pct) = s.strip_suffix('%') {
        match pct.parse::<f64>() {
            Ok(p) if p > 0.0 && p <= 100.0 => Support::percent(p),
            _ => {
                eprintln!("bad support percentage: {s}");
                exit(2)
            }
        }
    } else {
        match s.parse::<u64>() {
            Ok(n) if n > 0 => Support::Count(n),
            _ => {
                eprintln!("bad support count: {s}");
                exit(2)
            }
        }
    }
}

fn parse_dataset(s: &str) -> PaperDataset {
    match s {
        "mushroom" => PaperDataset::Mushroom,
        "t10" | "t10i4d100k" => PaperDataset::T10I4D100K,
        "chess" => PaperDataset::Chess,
        "pumsb" | "pumsb_star" => PaperDataset::PumsbStar,
        "medical" => PaperDataset::Medical,
        _ => {
            eprintln!("unknown dataset: {s}");
            exit(2)
        }
    }
}

fn cluster() -> SimCluster {
    let nodes: u32 = arg("--nodes").and_then(|s| s.parse().ok()).unwrap_or(12);
    let cores: u32 = arg("--cores").and_then(|s| s.parse().ok()).unwrap_or(8);
    let c = SimCluster::new(
        ClusterSpec::new(nodes.max(1), cores.max(1), 24 * 1024 * 1024 * 1024),
        CostModel::hadoop_era(),
    );
    // `--locality-wait SECS` — delay-scheduling threshold: how long a task
    // waits for a core on its preferred node before spilling to any free
    // core. 0 disables delay scheduling; large values pin tasks to their
    // data. Virtual-time only: results never change.
    if let Some(w) = arg("--locality-wait") {
        match w.parse::<f64>() {
            Ok(secs) if secs >= 0.0 => {
                let mut cfg = c.scheduler_config();
                cfg.locality_wait = secs;
                c.set_scheduler_config(cfg);
            }
            _ => {
                eprintln!("bad --locality-wait (expected seconds >= 0): {w}");
                exit(2)
            }
        }
    }
    // `--memory-fraction FRAC` — the storage (cache) share of each node's
    // memory; the rest is the execution region the memory governor budgets
    // tasks against. Must land in (0, 1]; the 0.6 default reproduces the
    // historical split bit-for-bit.
    if let Some(f) = arg("--memory-fraction") {
        match f.parse::<f64>() {
            Ok(frac) if frac > 0.0 && frac <= 1.0 => {
                let mut cfg = c.scheduler_config();
                cfg.storage_fraction = frac;
                c.set_scheduler_config(cfg);
            }
            _ => {
                eprintln!("bad --memory-fraction (expected a fraction in (0, 1]): {f}");
                exit(1)
            }
        }
    }
    c
}

fn load_transactions(path: &str) -> Vec<Vec<u32>> {
    match read_dat(path) {
        Ok(tx) if !tx.is_empty() => tx,
        Ok(_) => {
            eprintln!("{path}: no transactions found");
            exit(1)
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            exit(1)
        }
    }
}

fn cmd_generate() {
    let dataset = parse_dataset(&arg("--dataset").unwrap_or_else(|| usage()));
    let out = arg("--out").unwrap_or_else(|| usage());
    let scale: f64 = arg("--scale").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let tx = dataset.generate_scaled(scale);
    if let Err(e) = yafim::data::write_dat(&out, &tx) {
        eprintln!("{out}: {e}");
        exit(1);
    }
    let s = yafim::data::stats(&tx);
    println!(
        "wrote {} transactions ({} distinct items, avg length {:.1}) to {out}",
        s.transactions, s.distinct_items, s.avg_len
    );
}

/// `--phase2 <paper|opt|bitmap>` — the Spark miner's Phase-II hot path:
/// `paper` (default) is the paper-faithful hash-tree engine, `opt` enables
/// dense re-encoding, the triangular pass-2 counter, trie matching and
/// cross-pass trimming, and `bitmap` swaps the `k ≥ 3` trie for vertical
/// TID-bitmap counting (word-wise AND + popcount over a columnar store).
/// Results are identical; only the virtual timings move.
fn yafim_config(support: Support) -> YafimConfig {
    match arg("--phase2").as_deref() {
        None | Some("paper") => YafimConfig::new(support),
        Some("opt") => YafimConfig::optimized(support),
        Some("bitmap") => YafimConfig::bitmap(support),
        Some(other) => {
            eprintln!("unknown --phase2 mode `{other}`: expected paper, opt or bitmap");
            exit(1)
        }
    }
}

/// `--fault-plan FILE` — a JSON fault plan (see `results/*.fault.json` for
/// examples and `FaultPlan::to_json` for the schema) installed on the
/// simulated cluster before mining. Seeded and fully deterministic: the same
/// plan over the same input reproduces results, virtual time and recovery
/// counters bit-for-bit.
fn fault_plan() -> Option<yafim::cluster::FaultPlan> {
    let path = arg("--fault-plan")?;
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            exit(1)
        }
    };
    let value = match yafim::cluster::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: invalid JSON: {e}");
            exit(1)
        }
    };
    match yafim::cluster::FaultPlan::from_json(&value) {
        Ok(plan) => Some(plan),
        Err(e) => {
            eprintln!("{path}: invalid fault plan: {e}");
            exit(1)
        }
    }
}

fn run_distributed(miner: &str, tx: &[Vec<u32>], support: Support) -> (MinerRun, SimCluster) {
    let c = cluster();
    if let Some(plan) = fault_plan() {
        c.faults().set_plan(plan);
    }
    c.hdfs().put_overwrite("input.dat", to_lines(tx));
    let run = match miner {
        "spark" => Yafim::new(Context::new(c.clone()), yafim_config(support))
            .mine("input.dat")
            .expect("input written"),
        "mapreduce" => MrApriori::new(c.clone(), MrAprioriConfig::new(support))
            .mine("input.dat")
            .expect("input written"),
        "son" => Son::new(c.clone(), SonConfig::new(support))
            .mine("input.dat")
            .expect("input written"),
        "pfp" => Pfp::new(Context::new(c.clone()), PfpConfig::new(support))
            .mine("input.dat")
            .expect("input written"),
        _ => unreachable!("checked by caller"),
    };
    (run, c)
}

fn cmd_mine() {
    let input = arg("--input").unwrap_or_else(|| usage());
    let support = parse_support(&arg("--support").unwrap_or_else(|| usage()));
    let miner = arg("--miner").unwrap_or_else(|| "spark".to_string());
    let tx = load_transactions(&input);

    let start = std::time::Instant::now();
    let (result, virtual_secs, cluster) = match miner.as_str() {
        "sequential" => (apriori(&tx, &SequentialConfig::new(support)), None, None),
        "eclat" => (eclat(&tx, support), None, None),
        "fpgrowth" => (fp_growth(&tx, support), None, None),
        "spark" | "mapreduce" | "son" | "pfp" => {
            let (run, c) = run_distributed(&miner, &tx, support);
            (run.result, Some(run.total_seconds), Some(c))
        }
        other => {
            eprintln!("unknown miner: {other}");
            exit(2)
        }
    };
    let wall = start.elapsed();

    println!(
        "{miner}: {} frequent itemsets (longest {}), levels {:?}",
        result.total(),
        result.max_len(),
        result.level_sizes()
    );
    match virtual_secs {
        Some(v) => println!("virtual cluster time {v:.2}s (wall {wall:.2?})"),
        None => println!("wall time {wall:.2?}"),
    }

    let top: usize = arg("--top").and_then(|s| s.parse().ok()).unwrap_or(10);
    let mut by_support: Vec<_> = result.iter().filter(|(s, _)| s.len() >= 2).collect();
    by_support.sort_by_key(|(_, sup)| std::cmp::Reverse(*sup));
    if !by_support.is_empty() {
        println!("\ntop itemsets (length >= 2):");
        for (set, sup) in by_support.into_iter().take(top) {
            println!("  {set}  support {sup}");
        }
    }

    if let Some(min_conf) = arg("--rules").and_then(|s| s.parse::<f64>().ok()) {
        let rules = generate_rules(&result, tx.len() as u64, &RuleConfig::new(min_conf));
        println!("\n{} rules at confidence >= {min_conf}:", rules.len());
        for rule in rules.iter().take(top) {
            println!("  {rule}");
        }
    }

    if flag("--timeline") {
        if let Some(c) = &cluster {
            println!("\nvirtual timeline:");
            print!("{}", c.metrics().render_timeline());
        } else {
            eprintln!("--timeline requires a distributed miner");
        }
    }

    if flag("--report") {
        if let Some(c) = &cluster {
            println!("\n{}", yafim::cluster::full_report(c.metrics()));
        } else {
            eprintln!("--report requires a distributed miner");
        }
    }

    if let Some(path) = arg("--trace") {
        if let Some(c) = &cluster {
            let json = yafim::cluster::chrome_trace(c.metrics(), c.spec());
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("{path}: {e}");
                exit(1);
            }
            println!("\nwrote Chrome trace to {path} (open in https://ui.perfetto.dev)");
        } else {
            eprintln!("--trace requires a distributed miner");
        }
    }

    // `--critical-path` — decompose the virtual makespan into exhaustive
    // attribution buckets (compute, shuffle, broadcast, faults, scheduler
    // idle, ...) plus per-stage skew, straight from the span log.
    if flag("--critical-path") {
        if let Some(c) = &cluster {
            let report = yafim::cluster::critical_path(c.metrics(), c.cost());
            println!("\n{}", report.render());
        } else {
            eprintln!("--critical-path requires a distributed miner");
        }
    }

    // `--manifest FILE` — write the versioned run manifest (the same
    // document the bench binaries emit for the regression gate).
    if let Some(path) = arg("--manifest") {
        if let Some(c) = &cluster {
            use yafim::cluster::json::JsonValue;
            let dataset = JsonValue::object(vec![
                ("input", input.as_str().into()),
                ("transactions", tx.len().into()),
            ]);
            let config = JsonValue::object(vec![
                ("miner", miner.as_str().into()),
                (
                    "phase2",
                    arg("--phase2").unwrap_or_else(|| "paper".into()).into(),
                ),
                ("nodes", (c.spec().nodes as u64).into()),
                ("cores_per_node", (c.spec().cores_per_node as u64).into()),
                ("locality_wait", c.scheduler_config().locality_wait.into()),
                (
                    "storage_fraction",
                    c.scheduler_config().storage_fraction.into(),
                ),
            ]);
            let mut manifest =
                yafim::cluster::RunManifest::capture("yafim-cli mine", &miner, dataset, config, c);
            manifest.push_metric("frequent_itemsets", result.total() as f64);
            if let Err(e) = std::fs::write(&path, format!("{}\n", manifest.to_json())) {
                eprintln!("{path}: {e}");
                exit(1);
            }
            println!("\nwrote run manifest to {path}");
        } else {
            eprintln!("--manifest requires a distributed miner");
        }
    }
}

fn cmd_compare() {
    let input = arg("--input").unwrap_or_else(|| usage());
    let support = parse_support(&arg("--support").unwrap_or_else(|| usage()));
    let tx = load_transactions(&input);

    println!("{:<12} {:>12} {:>10}", "miner", "virtual (s)", "itemsets");
    let mut reference = None;
    for miner in ["spark", "mapreduce", "son", "pfp"] {
        let (run, _) = run_distributed(miner, &tx, support);
        if let Some(r) = &reference {
            assert_eq!(r, &run.result, "{miner} diverges — please report a bug");
        }
        println!(
            "{:<12} {:>12.2} {:>10}",
            miner,
            run.total_seconds,
            run.result.total()
        );
        reference.get_or_insert(run.result);
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("generate") => cmd_generate(),
        Some("mine") => cmd_mine(),
        Some("compare") => cmd_compare(),
        _ => usage(),
    }
}
