//! The paper's §V.D application: mining medical case data "to find the
//! relationship in medicine", with association rules over comorbidity
//! patterns — plus the YAFIM vs MapReduce comparison the paper reports as
//! ~25× on this workload.
//!
//! ```sh
//! cargo run --release --example medical_rules
//! ```

use yafim::cluster::SimCluster;
use yafim::data::{to_lines, MedicalConfig, MedicalGenerator};
use yafim::rdd::Context;
use yafim::{
    closed_itemsets, generate_rules, MrApriori, MrAprioriConfig, RuleConfig, Support, Yafim,
    YafimConfig,
};

fn main() {
    // Synthetic hospital case records: each case is a basket of medical
    // entities (diagnoses, medications) with planted comorbidity groups.
    let cases = MedicalGenerator::new(MedicalConfig {
        cases: 10_000,
        ..MedicalConfig::paper_scale()
    })
    .generate();
    let support = Support::percent(3.0); // the paper's Fig. 6 threshold

    let spark_cluster = SimCluster::paper_cluster();
    spark_cluster
        .hdfs()
        .put_overwrite("cases.dat", to_lines(&cases));
    let yafim = Yafim::new(Context::new(spark_cluster), YafimConfig::new(support))
        .mine("cases.dat")
        .expect("dataset written");

    let mr_cluster = SimCluster::paper_cluster();
    mr_cluster
        .hdfs()
        .put_overwrite("cases.dat", to_lines(&cases));
    let mr = MrApriori::new(mr_cluster, MrAprioriConfig::new(support))
        .mine("cases.dat")
        .expect("dataset written");

    assert_eq!(yafim.result, mr.result);

    println!(
        "{} cases at Sup = 3%: {} frequent entity sets, deepest pattern {} entities",
        cases.len(),
        yafim.result.total(),
        yafim.result.max_len()
    );
    println!("\nper-iteration comparison (the paper's Fig. 6 shape):");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "pass", "YAFIM (s)", "MR (s)", "speedup"
    );
    for (y, m) in yafim.passes.iter().zip(&mr.passes) {
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>8.1}x",
            y.pass,
            y.seconds,
            m.seconds,
            m.seconds / y.seconds
        );
    }
    println!(
        "{:>6} {:>12.2} {:>12.2} {:>8.1}x   (paper: ~25x)",
        "total",
        yafim.total_seconds,
        mr.total_seconds,
        mr.total_seconds / yafim.total_seconds
    );

    // Condense before presenting: closed itemsets carry all support
    // information with far fewer sets.
    let closed = closed_itemsets(&yafim.result);
    println!(
        "\n{} frequent sets condense to {} closed sets; largest comorbidity clusters:",
        yafim.result.total(),
        closed.len()
    );
    for (set, sup) in closed.iter().take(3) {
        println!(
            "  {} entities co-occurring in {sup} cases: {set}",
            set.len()
        );
    }

    // High-confidence comorbidity rules: "patients with A are usually also
    // prescribed/diagnosed B".
    let rules = generate_rules(&yafim.result, cases.len() as u64, &RuleConfig::new(0.8));
    println!("\nstrongest clinical associations (confidence >= 80%, by lift):");
    let mut by_lift = rules;
    by_lift.sort_by(|a, b| b.lift.partial_cmp(&a.lift).expect("finite lift"));
    for rule in by_lift.iter().take(10) {
        println!("  {rule}");
    }
}
