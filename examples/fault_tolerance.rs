//! Lineage-based fault tolerance, the RDD property the paper leans on
//! (§II.B): "RDDs can achieve fault-tolerance based on lineage information
//! rather than replication. Spark tracks enough information to reconstruct
//! RDDs when a node fails."
//!
//! This example caches a transactions RDD, runs a computation, then kills a
//! whole node: its cached partitions evaporate, its shuffle map outputs are
//! lost, and broadcast blocks must be re-fetched. The next action hits fetch
//! failures, resubmits just the missing map tasks, recomputes the evicted
//! partitions through the lineage — and produces byte-identical results,
//! paying only virtual recompute time.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use yafim::cluster::SimCluster;
use yafim::data::{to_lines, PaperDataset};
use yafim::rdd::{Context, FaultInjection};

fn main() {
    let cluster = SimCluster::paper_cluster();
    let tx = PaperDataset::Mushroom.generate_scaled(0.25);
    cluster.hdfs().put_overwrite("tx.dat", to_lines(&tx));

    // The node holding the input's primary block replica is the one with
    // the most to lose: data-local tasks, cached partitions, map outputs.
    let victim = cluster.hdfs().get("tx.dat").expect("written").blocks()[0].replicas[0];

    let ctx = Context::new(cluster);
    let transactions = ctx
        .text_file("tx.dat", 64)
        .expect("file written")
        .map(|line| yafim::parse_transaction(&line))
        .cache();

    let counts = transactions
        .flat_map(|t| t)
        .map(|item| (item, 1u64))
        .reduce_by_key(|a, b| a + b);

    let t0 = ctx.metrics().now();
    let healthy = counts.collect();
    let t1 = ctx.metrics().now();
    println!(
        "healthy run:   {} distinct items counted in {:.3} virtual s ({} cached partitions)",
        healthy.len(),
        t1.since(t0).as_secs(),
        ctx.cache().stats().entries
    );

    // Warm re-run: everything cached / shuffle reused.
    let warm = counts.collect();
    let t2 = ctx.metrics().now();
    println!(
        "warm re-run:   identical={} in {:.3} virtual s",
        warm == healthy,
        t2.since(t1).as_secs()
    );

    // Kill the data-local node. Everything it held is gone at once.
    let report = ctx.lose_node(victim);
    println!(
        "\n{} lost: {} cached partitions dropped, {} shuffle map outputs lost",
        report.node, report.cached_partitions_dropped, report.map_outputs_lost
    );
    assert!(report.cached_partitions_dropped > 0);
    assert!(report.map_outputs_lost > 0);

    // The shuffle is NOT discarded wholesale: only the dead node's map
    // outputs are holed, and the next action resubmits exactly those.
    assert_eq!(ctx.materialized_shuffles(), 1);

    let recovered = counts.collect();
    let t3 = ctx.metrics().now();
    println!(
        "recovery run:  identical={} in {:.3} virtual s (partial map resubmission + lineage recompute)",
        recovered == healthy,
        t3.since(t2).as_secs()
    );
    assert_eq!(recovered, healthy, "lineage recovery must be exact");

    let rec = ctx.metrics().snapshot().recovery;
    println!(
        "recovery counters: {} nodes lost, {} fetch failures, {} partitions recomputed, {} broadcast re-fetches",
        rec.nodes_lost, rec.fetch_failures, rec.recomputed_partitions, rec.broadcast_refetches
    );
    assert_eq!(rec.nodes_lost, 1);
    assert_eq!(rec.fetch_failures as usize, report.map_outputs_lost);

    let recompute = t3.since(t2).as_secs();
    let warm_cost = t2.since(t1).as_secs();
    println!(
        "\nrecovery cost {:.3}s vs warm {:.3}s — the engine paid to rebuild what {} held, \
         and produced exactly the same answer",
        recompute, warm_cost, report.node
    );
    assert!(recompute > warm_cost);

    // Killing the same node twice is a no-op: nothing left to lose.
    let again = ctx.lose_node(victim);
    assert_eq!(again.cached_partitions_dropped, 0);
    assert_eq!(again.map_outputs_lost, 0);

    // A second failure mode for completeness: dropping a whole shuffle
    // (`lose_shuffle`) forces a full map-stage re-run on next use.
    assert!(ctx.lose_shuffle(counts.id()));
    assert_eq!(ctx.materialized_shuffles(), 0);
    let rebuilt = counts.collect();
    assert_eq!(rebuilt, healthy);
    println!("full shuffle loss also recovered identically");
}
