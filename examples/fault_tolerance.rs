//! Lineage-based fault tolerance, the RDD property the paper leans on
//! (§II.B): "RDDs can achieve fault-tolerance based on lineage information
//! rather than replication. Spark tracks enough information to reconstruct
//! RDDs when a node fails."
//!
//! This example caches a transactions RDD, runs a computation, then
//! simulates executor loss by dropping cached partitions and a materialized
//! shuffle — and shows the engine recomputing identical results through the
//! lineage, paying recompute time on the virtual clock.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use yafim::cluster::SimCluster;
use yafim::data::{to_lines, PaperDataset};
use yafim::rdd::{Context, FaultInjection};

fn main() {
    let cluster = SimCluster::paper_cluster();
    let tx = PaperDataset::Mushroom.generate_scaled(0.25);
    cluster.hdfs().put_overwrite("tx.dat", to_lines(&tx));

    let ctx = Context::new(cluster);
    let transactions = ctx
        .text_file("tx.dat", 64)
        .expect("file written")
        .map(|line| yafim::parse_transaction(&line))
        .cache();

    let counts = transactions
        .flat_map(|t| t)
        .map(|item| (item, 1u64))
        .reduce_by_key(|a, b| a + b);

    let t0 = ctx.metrics().now();
    let healthy = counts.collect();
    let t1 = ctx.metrics().now();
    println!(
        "healthy run:   {} distinct items counted in {:.3} virtual s ({} cached partitions)",
        healthy.len(),
        t1.since(t0).as_secs(),
        ctx.cache().stats().entries
    );

    // Warm re-run: everything cached / shuffle reused.
    let warm = counts.collect();
    let t2 = ctx.metrics().now();
    println!(
        "warm re-run:   identical={} in {:.3} virtual s",
        warm == healthy,
        t2.since(t1).as_secs()
    );

    // Simulated node failure: lose a third of the cached partitions and the
    // shuffle output that was derived from them.
    let lost: Vec<usize> = (0..transactions.num_partitions()).step_by(3).collect();
    for &p in &lost {
        ctx.drop_cached_partition(transactions.id(), p);
    }
    ctx.drop_shuffle(counts.id());
    println!(
        "\ninjected failure: dropped {} cached partitions + the shuffle output",
        lost.len()
    );

    let recovered = counts.collect();
    let t3 = ctx.metrics().now();
    println!(
        "recovery run:  identical={} in {:.3} virtual s (lineage recompute)",
        recovered == healthy,
        t3.since(t2).as_secs()
    );
    assert_eq!(recovered, healthy, "lineage recovery must be exact");

    let recompute = t3.since(t2).as_secs();
    let warm_cost = t2.since(t1).as_secs();
    println!(
        "\nrecovery cost {:.3}s vs warm {:.3}s — the engine paid to rebuild lost partitions, \
         and produced exactly the same answer",
        recompute, warm_cost
    );
    assert!(recompute > warm_cost);
}
