//! Quickstart: mine frequent itemsets with YAFIM on the simulated paper
//! cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use yafim::cluster::SimCluster;
use yafim::data::{to_lines, QuestConfig, QuestGenerator};
use yafim::rdd::Context;
use yafim::{Support, Yafim, YafimConfig};

fn main() {
    // 1. A virtual cluster shaped like the paper's testbed: 12 nodes,
    //    8 cores and 24 GB each. Computation is real; time is virtual.
    let cluster = SimCluster::paper_cluster();

    // 2. A synthetic market-basket dataset on simulated HDFS.
    let transactions = QuestGenerator::new(QuestConfig {
        transactions: 20_000,
        items: 500,
        avg_transaction_len: 8.0,
        avg_pattern_len: 3.0,
        patterns: 80,
        correlation: 0.4,
        keep_fraction: 0.7,
        seed: 1,
    })
    .generate();
    cluster
        .hdfs()
        .put_overwrite("baskets.dat", to_lines(&transactions));

    // 3. Mine with YAFIM at 1% minimum support.
    let ctx = Context::new(cluster);
    let run = Yafim::new(ctx, YafimConfig::new(Support::percent(1.0)))
        .mine("baskets.dat")
        .expect("dataset was just written");

    // 4. Report.
    println!(
        "YAFIM mined {} frequent itemsets (longest: {} items) in {:.2} virtual seconds",
        run.result.total(),
        run.result.max_len(),
        run.total_seconds
    );
    println!("\nper-pass breakdown:");
    for p in &run.passes {
        println!(
            "  pass {:>2}: {:>7.3}s   {:>6} candidates -> {:>6} frequent",
            p.pass, p.seconds, p.candidates, p.frequent
        );
    }

    println!("\nmost frequent pairs:");
    let mut pairs: Vec<_> = run.result.level(2).to_vec();
    pairs.sort_by_key(|(_, sup)| std::cmp::Reverse(*sup));
    for (set, sup) in pairs.iter().take(5) {
        println!("  {set}  support {sup}");
    }
}
