//! Market-basket analysis: YAFIM vs the MapReduce baseline on the same
//! retail-style dataset — the paper's core comparison, end to end.
//!
//! ```sh
//! cargo run --release --example market_basket
//! ```

use yafim::cluster::SimCluster;
use yafim::data::{to_lines, PaperDataset};
use yafim::rdd::Context;
use yafim::{generate_rules, MrApriori, MrAprioriConfig, RuleConfig, Support, Yafim, YafimConfig};

fn main() {
    // A T10I4D100K-shaped basket dataset, scaled down so the example runs
    // in seconds of real time.
    let transactions = PaperDataset::T10I4D100K.generate_scaled(0.1);
    let support = Support::percent(1.0);

    // --- YAFIM on the Spark-style engine ---
    let spark_cluster = SimCluster::paper_cluster();
    spark_cluster
        .hdfs()
        .put_overwrite("retail.dat", to_lines(&transactions));
    let ctx = Context::new(spark_cluster);
    let yafim = Yafim::new(ctx, YafimConfig::new(support))
        .mine("retail.dat")
        .expect("dataset written");

    // --- MR-Apriori on the Hadoop-style engine ---
    let mr_cluster = SimCluster::paper_cluster();
    mr_cluster
        .hdfs()
        .put_overwrite("retail.dat", to_lines(&transactions));
    let mr = MrApriori::new(mr_cluster, MrAprioriConfig::new(support))
        .mine("retail.dat")
        .expect("dataset written");

    // The paper's correctness check: identical itemsets.
    assert_eq!(yafim.result, mr.result, "the two engines must agree");

    println!(
        "{} transactions, support {:?}: {} frequent itemsets (max length {})",
        transactions.len(),
        support,
        yafim.result.total(),
        yafim.result.max_len()
    );
    println!(
        "YAFIM: {:>8.2} virtual s   ({} passes)",
        yafim.total_seconds,
        yafim.passes.len()
    );
    println!(
        "MR:    {:>8.2} virtual s   ({} jobs)",
        mr.total_seconds,
        mr.passes.len()
    );
    println!(
        "speedup: {:.1}x (paper reports ~10x on T10I4D100K, ~18x on average)",
        mr.total_seconds / yafim.total_seconds
    );

    // Cross-sell rules from the frequent itemsets.
    let rules = generate_rules(
        &yafim.result,
        transactions.len() as u64,
        &RuleConfig::new(0.6),
    );
    println!("\ntop cross-sell rules (confidence >= 60%):");
    for rule in rules.iter().take(8) {
        println!("  {rule}");
    }
}
