//! A tour of the two distributed engines underneath YAFIM — for readers who
//! want to use `yafim-rdd` / `yafim-mapreduce` as general-purpose engines
//! rather than through the miners.
//!
//! ```sh
//! cargo run --release --example engine_tour
//! ```

use std::sync::Arc;
use yafim::cluster::SimCluster;
use yafim::mapreduce::{Emitter, MapReduceJob, MrRunner};
use yafim::rdd::Context;

fn main() {
    let cluster = SimCluster::paper_cluster();

    // A little corpus on simulated HDFS.
    let lines: Vec<String> = (0..5_000)
        .map(|i| format!("user{} item{} item{}", i % 97, i % 13, (i * 7) % 13))
        .collect();
    cluster.hdfs().put_overwrite("events.log", lines);

    // ---- the RDD engine ----
    let ctx = Context::new(cluster.clone());
    let events = ctx.text_file("events.log", 64).expect("written").cache();

    // Word count with the classic chain.
    let mut top_items: Vec<(String, u64)> = events
        .flat_map(|line: String| {
            line.split_whitespace()
                .filter(|w| w.starts_with("item"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .map(|w| (w, 1u64))
        .reduce_by_key(|a, b| a + b)
        .collect();
    top_items.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("distinct items: {}", top_items.len());
    println!(
        "hottest item:   {:?}",
        top_items.first().expect("non-empty")
    );

    // The extended operator set: sample → distinct → join.
    let users = events.map(|l: String| {
        let mut it = l.split_whitespace();
        (
            it.next().expect("user column").to_string(),
            it.next().expect("item column").to_string(),
        )
    });
    let active_users = users.keys().distinct();
    println!("active users:   {}", active_users.count());

    let user_sample = users.sample(0.1, 7);
    let item_counts = ctx.parallelize(top_items.clone());
    let joined = user_sample
        .map(|(u, item)| (item, u))
        .join(&item_counts)
        .collect();
    println!("sampled (user, item-popularity) pairs: {}", joined.len());

    // ---- the MapReduce engine, same corpus ----
    let runner = MrRunner::new(cluster.clone());
    let job = MapReduceJob::new(
        "user activity",
        "events.log",
        |_off, line: &str, em: &mut Emitter<String, u64>, _w| {
            if let Some(user) = line.split_whitespace().next() {
                em.emit(user.to_string(), 1);
            }
        },
        |user: &String, counts: Vec<u64>, em: &mut Emitter<String, u64>, _w| {
            em.emit(user.clone(), counts.into_iter().sum());
        },
    )
    .with_combiner(|_u: &String, counts: Vec<u64>| counts.into_iter().sum())
    .with_output(
        "activity.tsv",
        Arc::new(|u: &String, c: &u64| format!("{u}\t{c}")),
    );
    let result = runner.run(job).expect("input exists");
    println!(
        "MapReduce: {} users counted across {} map / {} reduce tasks, output committed to {}",
        result.pairs.len(),
        result.stats.map_tasks,
        result.stats.reduce_tasks,
        result.output_file.as_ref().expect("committed").name(),
    );

    // ---- where did the virtual time go? ----
    println!("\nvirtual-time breakdown:");
    for (kind, n, total) in cluster.metrics().summary_by_kind() {
        println!("  {kind:?}: {n} events, {total}");
    }
    println!(
        "total virtual time: {:.2}s (note the MapReduce job dwarfing the RDD jobs)",
        cluster.metrics().now().as_secs()
    );
}
